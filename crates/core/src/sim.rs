//! The trace-driven, timing-first out-of-order core model.
//!
//! This is the reproduction's stand-in for the paper's "trace-driven
//! cycle-accurate performance model that reflects all six of the
//! implementations" (§II). Per instruction it computes fetch, dispatch,
//! issue, completion and retirement cycles under:
//!
//! * front-end bubbles and redirects from the branch predictor
//!   ([`exynos_branch::FrontEnd`]), with the UOC supplying µops on
//!   lockable kernels (M5+);
//! * decode/rename width, ROB and PRF occupancy limits (Table I);
//! * per-class issue ports ([`crate::ports`]);
//! * dataflow dependencies through architectural registers;
//! * the full memory system ([`crate::memsys`]) for loads/stores/ifetch,
//!   including load-to-load cascading (M4+).
//!
//! Wrong-path execution is not modeled (a standard trace-driven
//! limitation); the Table I mispredict penalty plus resolution delay
//! provides the redirect cost.

use crate::cancel::CancelToken;
use crate::config::CoreConfig;
use crate::error::{OccupancySnapshot, SimError};
use crate::fault::{FaultFiring, FaultInjector, FaultPlan, FaultStats};
use crate::memsys::{MemStats, MemSystem};
use crate::ports::{PortSchedule, Resource};
use exynos_branch::{FetchFeedback, FrontEnd, FrontendStats, Redirect};
use exynos_telemetry::{
    BranchClass, FaultClass, PipelineEvent, PrefetchKind, Telemetry, UocModeTag,
};
use exynos_trace::{BranchKind, Inst, InstKind, Reg, SlicePlan, TraceGen};
use exynos_uoc::{Uoc, UocMode};
use std::collections::VecDeque;

/// Cumulative simulation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycle of the last retirement.
    pub last_retire: u64,
    /// Loads executed.
    pub loads: u64,
    /// Instructions supplied by the UOC (fetch/decode power proxy).
    pub uoc_supplied: u64,
    /// Malformed trace records skipped (lenient decode).
    pub malformed_insts: u64,
    /// Detected predictor-state corruptions recovered by a flush.
    pub predictor_corruptions: u64,
    /// UOC block-state losses recovered by demotion to FilterMode.
    pub uoc_recoveries: u64,
    /// Retirement gaps beyond the watchdog threshold.
    pub watchdog_events: u64,
    /// Graceful-degradation rungs executed by the watchdog.
    pub watchdog_recoveries: u64,
}

/// How many consecutive detected-corruption steps the front end may spend
/// flushing before the error escalates: a genuine soft error clears on
/// the first rebuild, so repeats mean the corruption source is live.
const CORRUPTION_ESCALATION_LIMIT: u32 = 8;

/// Forward-progress watchdog state (§ robustness): retirement gaps beyond
/// `threshold` trigger the degradation ladder, and `max_recoveries`
/// exhausted rungs surface [`SimError::ForwardProgressStall`].
#[derive(Debug, Clone, Copy)]
struct Watchdog {
    /// Retirement-gap trigger in cycles. Far above any legitimate
    /// single-instruction latency (a full MAB of DRAM misses is < 10k).
    threshold: u64,
    /// Degradation rungs to try before erroring out.
    max_recoveries: u32,
    /// Rungs spent so far (decays with sustained progress).
    recoveries: u32,
    /// Consecutive steps with healthy retirement gaps.
    progress_streak: u32,
    /// Most recent trip, for post-run diagnostics. Deliberately not part
    /// of the snapshot codec: it is transient observability state, and
    /// keeping it out preserves the wire format version.
    last_trip: Option<WatchdogTrip>,
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog {
            threshold: 50_000,
            max_recoveries: 3,
            recoveries: 0,
            progress_streak: 0,
            last_trip: None,
        }
    }
}

/// One forward-progress watchdog trip, reported by
/// [`Simulator::watchdog_report`] so callers (the service runner's span
/// attributes, post-mortem dumps) can see what the ladder last did
/// without parsing an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// Retire-time cycle at which the trip fired.
    pub cycle: u64,
    /// Retirement gap that exceeded the threshold.
    pub gap: u64,
    /// Ladder rung spent on this trip (0 = flush, 1 = +FilterMode,
    /// 2+ = +re-key); equals `max_recoveries` when the ladder was
    /// already exhausted and the run erred out.
    pub rung: u32,
}

/// Progress steps needed to forgive one spent recovery rung.
const WATCHDOG_DECAY_STREAK: u32 = 1024;

/// Pre-step statistics snapshot used to derive telemetry events from the
/// deltas one instruction produces. Only captured when a [`Telemetry`]
/// sink is attached, so the plain [`Simulator::step`] path pays nothing.
struct StepProbe {
    fe: FrontendStats,
    ubtb_locks: u64,
    ubtb_unlocks: u64,
    uoc_mode: Option<UocMode>,
    tp_first: u64,
    tp_dropped: u64,
    buddy_issued: u64,
    standalone_issued: u64,
    mem: MemStats,
    malformed: u64,
}

/// The telemetry tag for a UOC mode.
fn uoc_tag(mode: UocMode) -> UocModeTag {
    match mode {
        UocMode::Filter => UocModeTag::Filter,
        UocMode::Build => UocModeTag::Build,
        UocMode::Fetch => UocModeTag::Fetch,
    }
}

/// The telemetry class for a resolved branch.
fn branch_class(kind: Option<BranchKind>) -> BranchClass {
    match kind {
        Some(k) if k.is_return() => BranchClass::Return,
        Some(k) if k.is_indirect() => BranchClass::Indirect,
        Some(k) if k.is_conditional() => BranchClass::Cond,
        _ => BranchClass::Direct,
    }
}

/// Measurement baseline captured at the start of a detail window by
/// [`Simulator::measure_begin`]. The batched lockstep engine and the
/// scalar [`Simulator::run_slice`] path both derive their
/// [`SliceResult`]s through this one pair of helpers, so batched stats
/// are byte-equal to serial stats by construction.
#[derive(Debug, Clone, Copy)]
pub struct SliceMeasure {
    start_insts: u64,
    start_cycle: u64,
    fe0: FrontendStats,
    mem0: MemStats,
}

/// Results of one measured slice.
#[derive(Debug, Clone)]
pub struct SliceResult {
    /// Instructions measured.
    pub instructions: u64,
    /// Cycles elapsed over the detail window.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Branch mispredicts per kilo-instruction.
    pub mpki: f64,
    /// Average demand-load latency in cycles.
    pub avg_load_latency: f64,
    /// Front-end statistics over the whole run (warmup + detail).
    pub frontend: FrontendStats,
    /// Memory statistics over the whole run.
    pub mem: MemStats,
}

/// The per-generation core simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: CoreConfig,
    frontend: FrontEnd,
    uoc: Option<Uoc>,
    memsys: MemSystem,
    ports: PortSchedule,
    // ---- timing state ----
    fetch_cycle: u64,
    fetch_slots: u32,
    cur_fetch_line: u64,
    reg_ready: [u64; Reg::NUM_TOTAL as usize],
    reg_by_load: [bool; Reg::NUM_TOTAL as usize],
    rob: VecDeque<u64>,
    int_inflight: VecDeque<u64>,
    fp_inflight: VecDeque<u64>,
    last_retire: u64,
    retire_in_cycle: u32,
    decode_depth: u64,
    fe_restart: u64,
    // ---- per-step constants hoisted out of `cfg` (the step loop reads
    // them every instruction) ----
    width: u32,
    rob_cap: usize,
    int_prf_cap: usize,
    fp_prf_cap: usize,
    lat_mispredict: u64,
    load_cascade: bool,
    stats: SimStats,
    // ---- robustness ----
    injector: Option<FaultInjector>,
    watchdog: Watchdog,
    strict_decode: bool,
    consecutive_corruptions: u32,
    // Runtime attachment, never serialized: a resumed simulator starts
    // with no token and the driving layer re-attaches its own.
    cancel: Option<CancelToken>,
}

impl Simulator {
    /// Build a simulator for `cfg`.
    #[deprecated(
        since = "0.2.0",
        note = "construct through `exynos_core::builder::SimBuilder`, the one validated construction path"
    )]
    pub fn new(cfg: CoreConfig) -> Simulator {
        Simulator::construct(cfg)
    }

    /// Construction without validation — the builder's backend and the
    /// resume path. Callers outside the crate go through
    /// [`SimBuilder`](crate::builder::SimBuilder).
    pub(crate) fn construct(cfg: CoreConfig) -> Simulator {
        let decode_depth = cfg.lat.mispredict as u64 - 5;
        Simulator {
            frontend: FrontEnd::new(cfg.frontend.clone()),
            uoc: cfg.uoc.clone().map(Uoc::new),
            memsys: MemSystem::new(&cfg),
            ports: PortSchedule::new(&cfg.ports),
            fetch_cycle: 0,
            fetch_slots: 0,
            cur_fetch_line: u64::MAX,
            reg_ready: [0; Reg::NUM_TOTAL as usize],
            reg_by_load: [false; Reg::NUM_TOTAL as usize],
            rob: VecDeque::with_capacity(cfg.rob),
            int_inflight: VecDeque::new(),
            fp_inflight: VecDeque::new(),
            last_retire: 0,
            retire_in_cycle: 0,
            decode_depth,
            fe_restart: 4,
            width: cfg.width,
            rob_cap: cfg.rob,
            int_prf_cap: cfg.int_prf.saturating_sub(32),
            fp_prf_cap: cfg.fp_prf.saturating_sub(32),
            lat_mispredict: cfg.lat.mispredict as u64,
            load_cascade: cfg.mem.load_cascade,
            stats: SimStats::default(),
            injector: None,
            watchdog: Watchdog::default(),
            strict_decode: false,
            consecutive_corruptions: 0,
            cancel: None,
            cfg,
        }
    }

    /// Attach a deterministic fault injector executing `plan`. Replaces
    /// any previously attached injector.
    pub fn attach_fault_injector(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Injection counters (`None` when no injector is attached).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Reconfigure the forward-progress watchdog: a retirement gap beyond
    /// `threshold` cycles triggers the degradation ladder, and after
    /// `max_recoveries` exhausted rungs the run ends with
    /// [`SimError::ForwardProgressStall`].
    pub fn set_watchdog(&mut self, threshold: u64, max_recoveries: u32) {
        self.watchdog.threshold = threshold.max(1);
        self.watchdog.max_recoveries = max_recoveries;
    }

    /// Attach a cooperative cancellation token. The step loop polls it
    /// every [`CANCEL_POLL_PERIOD`](crate::cancel::CANCEL_POLL_PERIOD)
    /// instructions; a cancelled token (or expired deadline) ends the
    /// run with [`SimError::Cancelled`], leaving the simulator
    /// consistent and checkpointable.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Detach the cancellation token, if any.
    pub fn clear_cancel_token(&mut self) {
        self.cancel = None;
    }

    /// In strict mode a malformed trace record ends the run with
    /// [`SimError::MalformedInst`]; the default lenient policy counts it
    /// in [`SimStats::malformed_insts`] and skips the operation.
    pub fn set_strict_decode(&mut self, strict: bool) {
        self.strict_decode = strict;
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The most recent forward-progress watchdog trip, if any fired
    /// this run (`None` after a resume — trip reports are transient and
    /// not snapshotted).
    pub fn watchdog_report(&self) -> Option<WatchdogTrip> {
        self.watchdog.last_trip
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Front-end access (stats, context switching).
    pub fn frontend(&self) -> &FrontEnd {
        &self.frontend
    }

    /// Front-end mutable access (context switching in security studies).
    pub fn frontend_mut(&mut self) -> &mut FrontEnd {
        &mut self.frontend
    }

    /// Memory-system access (stats).
    pub fn memsys(&self) -> &MemSystem {
        &self.memsys
    }

    /// UOC access (`None` on generations without one). Read-only: batch
    /// probe paths peek at block state without perturbing the mode
    /// machine.
    pub fn uoc(&self) -> Option<&Uoc> {
        self.uoc.as_ref()
    }

    /// UOC statistics (zeroes when the generation has no UOC).
    pub fn uoc_stats(&self) -> exynos_uoc::UocStats {
        self.uoc.as_ref().map(|u| u.stats()).unwrap_or_default()
    }

    fn resources_for(kind: InstKind, branch: Option<BranchKind>) -> &'static [Resource] {
        match kind {
            InstKind::IntAlu | InstKind::Nop => {
                &[Resource::IntS, Resource::IntC, Resource::IntCd]
            }
            InstKind::IntMul => &[Resource::IntC, Resource::IntCd],
            InstKind::IntDiv => &[Resource::IntCd],
            InstKind::Load => &[Resource::Ld, Resource::Gen],
            InstKind::Store => &[Resource::St, Resource::Gen],
            InstKind::FpAdd => &[Resource::Fadd, Resource::Fmac],
            InstKind::FpMul | InstKind::FpMac => &[Resource::Fmac],
            InstKind::Branch => match branch {
                // Indirect branches execute on the complex ALUs (Table I
                // footnote b); direct branches on the BR units.
                Some(b) if b.is_indirect() => &[Resource::IntC, Resource::IntCd],
                _ => &[Resource::Br, Resource::IntC, Resource::IntCd],
            },
        }
    }

    fn exec_latency(&self, kind: InstKind) -> u64 {
        match kind {
            InstKind::IntAlu | InstKind::Nop | InstKind::Branch => 1,
            InstKind::IntMul => self.cfg.lat.imul as u64,
            InstKind::IntDiv => self.cfg.lat.idiv as u64,
            InstKind::FpAdd => self.cfg.lat.fadd as u64,
            InstKind::FpMul => self.cfg.lat.fmul as u64,
            InstKind::FpMac => self.cfg.lat.fmac as u64,
            InstKind::Load | InstKind::Store => {
                debug_assert!(false, "memory ops use the memsys");
                1
            }
        }
    }

    /// Machine occupancy for stall diagnostics.
    fn occupancy_snapshot(&self) -> OccupancySnapshot {
        OccupancySnapshot {
            rob: self.rob.len(),
            rob_capacity: self.cfg.rob,
            int_inflight: self.int_inflight.len(),
            fp_inflight: self.fp_inflight.len(),
            mshr_occupancy: self.memsys.mab_occupancy(self.last_retire),
            mshr_capacity: self.memsys.mab_capacity(),
            uoc_mode: self.uoc.as_ref().map(|u| u.mode()),
            uoc_occupancy: self.uoc.as_ref().map(|u| u.occupancy()).unwrap_or(0),
            fetch_cycle: self.fetch_cycle,
            last_retire: self.last_retire,
        }
    }

    /// Apply the state-corruption components of one injector firing.
    fn apply_state_faults(&mut self, fired: &FaultFiring) {
        if let Some(salt) = fired.corrupt_btb_target {
            let _ = self.frontend.corrupt_btb_target(salt);
        }
        if let Some(salt) = fired.corrupt_btb_tag {
            let _ = self.frontend.corrupt_btb_tag(salt);
        }
        if let Some(salt) = fired.flip_shp_weight {
            self.frontend.flip_shp_weight(salt);
        }
        if let Some(keep) = fired.truncate_ras {
            self.frontend.truncate_ras(keep);
        }
        if fired.drop_prefetch {
            let _ = self.memsys.drop_prefetch_state();
        }
    }

    /// Mutate a trace record per the injector firing: a warped PC makes a
    /// discontinuity gap; a stripped operand makes a malformed memory op.
    fn mutate_inst(inst: &mut Inst, fired: &FaultFiring) {
        if fired.gap_inst {
            inst.pc ^= 0x4000_0000;
        }
        if fired.malform_inst {
            inst.mem = None;
            if !matches!(inst.kind, InstKind::Load | InstKind::Store) {
                inst.kind = InstKind::Load;
                inst.branch = None;
            }
        }
    }

    /// A memory op with no address operand: in strict mode this ends the
    /// run; by default it is counted and retired as a 1-cycle no-op.
    fn skip_malformed(&mut self, inst: &Inst, issue: u64) -> Result<u64, SimError> {
        if self.strict_decode {
            return Err(SimError::MalformedInst {
                pc: inst.pc,
                kind: inst.kind,
                reason: "memory op carries no address operand",
            });
        }
        self.stats.malformed_insts += 1;
        Ok(issue + 1)
    }

    /// Process one instruction; returns its retirement cycle.
    ///
    /// An `Err` means the machine could not continue — a strict-decode
    /// violation, corruption that survives flushing, or a retire stage
    /// that stayed wedged through the whole degradation ladder.
    /// Recoverable conditions (detected predictor corruption, UOC state
    /// loss, transient stalls) degrade gracefully and return `Ok`.
    pub fn step(&mut self, inst: &Inst) -> Result<u64, SimError> {
        self.step_impl(inst, None)
    }

    /// [`step`](Simulator::step) with a telemetry sink: pipeline events
    /// and histograms are recorded into `tel`. Timing and statistics are
    /// identical to the plain path — telemetry only observes.
    pub fn step_with(&mut self, inst: &Inst, tel: &mut Telemetry) -> Result<u64, SimError> {
        self.step_impl(inst, Some(tel))
    }

    fn step_impl(&mut self, inst: &Inst, tel: Option<&mut Telemetry>) -> Result<u64, SimError> {
        // Cooperative cancellation: one relaxed-load poll per
        // CANCEL_POLL_PERIOD instructions keeps deadline enforcement off
        // the per-step critical path.
        if let Some(tok) = &self.cancel {
            if self.stats.instructions & (crate::cancel::CANCEL_POLL_PERIOD - 1) == 0 {
                if let Some(deadline) = tok.should_stop() {
                    return Err(SimError::Cancelled {
                        instructions: self.stats.instructions,
                        deadline,
                    });
                }
            }
        }
        // Snapshot stat counters so post-step deltas become events. Only
        // paid when a sink is attached AND the telemetry feature is on.
        let probe = match tel {
            Some(_) if Telemetry::ACTIVE => Some(self.capture_probe()),
            _ => None,
        };
        let mut corruption_recovered = false;
        let mut uoc_loss = false;
        let mut watchdog_trip: Option<(u64, u64)> = None;
        let width = self.width;
        // ---------------- Fault injection ----------------
        let mut inst = *inst;
        let fired = match self.injector.as_mut() {
            Some(inj) => inj.tick(),
            None => FaultFiring::default(),
        };
        self.apply_state_faults(&fired);
        Self::mutate_inst(&mut inst, &fired);
        let inst = &inst;
        // ---------------- Front end ----------------
        let fb = match self.frontend.on_inst(inst) {
            Ok(fb) => {
                self.consecutive_corruptions = 0;
                fb
            }
            Err(e) => {
                // Detected predictor-state corruption (the parity-error
                // analog): flush the front end and restart fetch. A
                // genuine soft error clears on the first rebuild, so
                // back-to-back detections mean the source is live and the
                // error escalates.
                self.stats.predictor_corruptions += 1;
                self.consecutive_corruptions += 1;
                if self.consecutive_corruptions > CORRUPTION_ESCALATION_LIMIT {
                    return Err(e.into());
                }
                corruption_recovered = true;
                self.frontend.flush_predictors();
                self.fetch_cycle += self.lat_mispredict;
                self.fetch_slots = 0;
                self.cur_fetch_line = u64::MAX;
                FetchFeedback::NONE
            }
        };
        // UOC mode machine (M5+): feed block structure; FetchMode gates the
        // instruction cache and decoders.
        let mut uoc_supply = false;
        if let Some(uoc) = &mut self.uoc {
            let broken = fb.redirect.is_some();
            let taken = inst.is_taken_branch();
            if uoc
                .on_inst(inst.pc, inst.branch.is_some(), taken, broken, self.frontend.ubtb_mut())
                .is_err()
            {
                // Lost block state: surrender the µop supply and rebuild
                // from FilterMode rather than serving a stale block.
                uoc.demote_to_filter();
                self.stats.uoc_recoveries += 1;
                uoc_loss = true;
            }
            uoc_supply = uoc.mode() == UocMode::Fetch;
            if uoc_supply {
                self.stats.uoc_supplied += 1;
            }
        }
        // Trace gaps delay THIS instruction's fetch.
        if fb.redirect == Some(Redirect::TraceGap) {
            self.fetch_cycle += self.lat_mispredict;
            self.fetch_slots = 0;
        }
        // Prediction-pipe bubbles precede this instruction.
        if fb.bubbles > 0 {
            self.fetch_cycle += fb.bubbles as u64;
            self.fetch_slots = 0;
        }
        // Instruction cache (skipped while the UOC supplies µops).
        let line = inst.pc >> 6;
        if line != self.cur_fetch_line {
            self.cur_fetch_line = line;
            if !uoc_supply {
                let lat = self.memsys.ifetch(inst.pc, self.fetch_cycle)?;
                if lat > 0 {
                    self.fetch_cycle += lat;
                    self.fetch_slots = 0;
                }
            }
        }
        // Fetch-width slotting.
        if self.fetch_slots >= width {
            self.fetch_cycle += 1;
            self.fetch_slots = 0;
        }
        let fetch_time = self.fetch_cycle;
        self.fetch_slots += 1;
        // A taken branch redirects fetch: it closes the current fetch
        // group, so at most one taken branch is consumed per cycle (the
        // "zero-bubble" paths still deliver one redirect per cycle).
        if inst.is_taken_branch() {
            self.fetch_slots = width;
        }

        // ---------------- Dispatch (ROB / PRF limits) ----------------
        let mut dispatch = fetch_time + self.decode_depth;
        if self.rob.len() >= self.rob_cap {
            debug_assert!(!self.rob.is_empty(), "a full ROB cannot be empty");
            if let Some(oldest) = self.rob.pop_front() {
                dispatch = dispatch.max(oldest);
            }
        }
        if let Some(dst) = inst.dst {
            let (q, cap) = if dst.is_int() {
                (&mut self.int_inflight, self.int_prf_cap)
            } else {
                (&mut self.fp_inflight, self.fp_prf_cap)
            };
            if q.len() >= cap.max(8) {
                debug_assert!(!q.is_empty(), "a full PRF queue cannot be empty");
                if let Some(freed) = q.pop_front() {
                    dispatch = dispatch.max(freed);
                }
            }
        }

        // ---------------- Ready / issue ----------------
        let mut ready = dispatch;
        for src in inst.srcs.iter().flatten() {
            if !src.is_zero() {
                ready = ready.max(self.reg_ready[src.index()]);
            }
        }
        let eligible = Self::resources_for(inst.kind, inst.branch.map(|b| b.kind));
        let issue = self.ports.book(eligible, ready);

        // ---------------- Execute ----------------
        let complete = match inst.kind {
            InstKind::Load => match inst.mem {
                Some(m) => {
                    self.stats.loads += 1;
                    let cascade = self.load_cascade
                        && inst
                            .srcs
                            .iter()
                            .flatten()
                            .any(|s| !s.is_zero() && self.reg_by_load[s.index()]);
                    self.memsys.load(inst.pc, m.vaddr, issue, cascade)?
                }
                None => self.skip_malformed(inst, issue)?,
            },
            InstKind::Store => match inst.mem {
                Some(m) => self.memsys.store(inst.pc, m.vaddr, issue)?,
                None => self.skip_malformed(inst, issue)?,
            },
            _ => issue + self.exec_latency(inst.kind),
        };
        // Injected completion stall (wedges retirement; the watchdog's
        // job is to notice).
        let complete = complete + fired.stall_cycles;

        // ---------------- Redirect resolution ----------------
        match fb.redirect {
            Some(Redirect::Mispredict) | Some(Redirect::Discovery) => {
                // The front end restarts once this branch resolves.
                self.fetch_cycle = self.fetch_cycle.max(complete + self.fe_restart);
                self.fetch_slots = 0;
                self.cur_fetch_line = u64::MAX;
            }
            _ => {}
        }

        // ---------------- Writeback ----------------
        if let Some(dst) = inst.dst {
            self.reg_ready[dst.index()] = complete;
            self.reg_by_load[dst.index()] = inst.kind == InstKind::Load;
        }

        // ---------------- In-order retire ----------------
        let mut rt = complete.max(self.last_retire);
        if rt == self.last_retire {
            if self.retire_in_cycle >= width {
                rt += 1;
                self.retire_in_cycle = 0;
            }
        } else {
            self.retire_in_cycle = 0;
        }
        // ---------------- Forward-progress watchdog ----------------
        // In this instruction-stepped model "N cycles without retirement"
        // is a gap between consecutive retire timestamps.
        let gap = rt - self.last_retire;
        if gap > self.watchdog.threshold {
            self.stats.watchdog_events += 1;
            self.watchdog.progress_streak = 0;
            self.watchdog.last_trip = Some(WatchdogTrip {
                cycle: rt,
                gap,
                rung: self.watchdog.recoveries,
            });
            if self.watchdog.recoveries >= self.watchdog.max_recoveries {
                return Err(SimError::ForwardProgressStall {
                    cycle: rt,
                    stalled_cycles: gap,
                    recoveries: self.watchdog.recoveries,
                    snapshot: self.occupancy_snapshot(),
                });
            }
            // Graceful degradation, one rung per event: flush the front
            // end; then also surrender the UOC; then also re-key the
            // context cipher in case an encrypted structure went bad.
            match self.watchdog.recoveries {
                0 => self.frontend.flush_predictors(),
                1 => {
                    if let Some(uoc) = &mut self.uoc {
                        uoc.demote_to_filter();
                    }
                    self.frontend.flush_predictors();
                }
                _ => {
                    self.frontend.rekey(0x5EED_F00D ^ rt);
                    if let Some(uoc) = &mut self.uoc {
                        uoc.demote_to_filter();
                    }
                    self.frontend.flush_predictors();
                }
            }
            watchdog_trip = Some((gap, self.watchdog.recoveries as u64));
            self.watchdog.recoveries += 1;
            self.stats.watchdog_recoveries += 1;
        } else {
            // Sustained progress forgives spent rungs, so isolated stalls
            // hours apart don't accumulate into a spurious abort.
            self.watchdog.progress_streak += 1;
            if self.watchdog.progress_streak >= WATCHDOG_DECAY_STREAK {
                self.watchdog.progress_streak = 0;
                self.watchdog.recoveries = self.watchdog.recoveries.saturating_sub(1);
            }
        }
        self.retire_in_cycle += 1;
        self.last_retire = rt;
        self.rob.push_back(rt);
        if let Some(dst) = inst.dst {
            if dst.is_int() {
                self.int_inflight.push_back(rt);
            } else {
                self.fp_inflight.push_back(rt);
            }
        }
        self.stats.instructions += 1;
        self.stats.last_retire = rt;
        if let (Some(tel), Some(p)) = (tel, probe) {
            self.emit_step_events(
                tel,
                &p,
                inst,
                &fired,
                fb,
                corruption_recovered,
                uoc_loss,
                watchdog_trip,
                complete,
                gap,
                rt,
            );
        }
        Ok(rt)
    }

    /// Snapshot the counters `emit_step_events` diffs against.
    fn capture_probe(&self) -> StepProbe {
        let ubtb = self.frontend.ubtb_stats();
        let tp = self.memsys.twopass().stats();
        StepProbe {
            fe: *self.frontend.stats(),
            ubtb_locks: ubtb.locks,
            ubtb_unlocks: ubtb.unlocks,
            uoc_mode: self.uoc.as_ref().map(|u| u.mode()),
            tp_first: tp.first_passes,
            tp_dropped: tp.dropped,
            buddy_issued: self.memsys.buddy_stats().issued,
            standalone_issued: self.memsys.standalone_stats().issued,
            mem: self.memsys.stats(),
            malformed: self.stats.malformed_insts,
        }
    }

    /// Turn one step's stat deltas into pipeline events. Every event is
    /// stamped at the retirement cycle `rt`; retirement never moves
    /// backwards, so the trace stays cycle-monotone by construction.
    #[allow(clippy::too_many_arguments)]
    fn emit_step_events(
        &self,
        tel: &mut Telemetry,
        p: &StepProbe,
        inst: &Inst,
        fired: &FaultFiring,
        fb: FetchFeedback,
        corruption_recovered: bool,
        uoc_loss: bool,
        watchdog_trip: Option<(u64, u64)>,
        resolve_cycle: u64,
        gap: u64,
        rt: u64,
    ) {
        let n = self.stats.instructions;
        // Injector firings come first: the pipeline's reaction (flushes,
        // gaps, malformed skips) follows from them.
        let firings = [
            (fired.corrupt_btb_target.is_some(), FaultClass::BtbTarget),
            (fired.corrupt_btb_tag.is_some(), FaultClass::BtbTag),
            (fired.flip_shp_weight.is_some(), FaultClass::ShpWeight),
            (fired.truncate_ras.is_some(), FaultClass::RasTruncate),
            (fired.drop_prefetch, FaultClass::PrefetchDrop),
            (fired.malform_inst, FaultClass::Malformed),
            (fired.gap_inst, FaultClass::TraceGap),
            (fired.stall_cycles > 0, FaultClass::Stall),
        ];
        for (hit, class) in firings {
            if hit {
                tel.record(rt, n, PipelineEvent::FaultInjected { class });
            }
        }
        if corruption_recovered {
            tel.record(
                rt,
                n,
                PipelineEvent::CorruptionRecovered {
                    consecutive: self.consecutive_corruptions as u64,
                },
            );
        }
        match fb.redirect {
            Some(Redirect::Mispredict) => tel.record(
                rt,
                n,
                PipelineEvent::Mispredict {
                    pc: inst.pc,
                    class: branch_class(inst.branch.map(|b| b.kind)),
                    resolve_cycle,
                },
            ),
            Some(Redirect::Discovery) => {
                tel.record(rt, n, PipelineEvent::BranchDiscovery { pc: inst.pc });
            }
            Some(Redirect::TraceGap) => {
                tel.record(rt, n, PipelineEvent::TraceGap { pc: inst.pc });
            }
            None => {}
        }
        let fe = self.frontend.stats();
        if fe.conf_flips_to_low > p.fe.conf_flips_to_low {
            tel.record(rt, n, PipelineEvent::ShpConfFlip { to_low: true });
        }
        if fe.conf_flips_to_high > p.fe.conf_flips_to_high {
            tel.record(rt, n, PipelineEvent::ShpConfFlip { to_low: false });
        }
        let ubtb = self.frontend.ubtb_stats();
        if ubtb.locks > p.ubtb_locks {
            tel.record(rt, n, PipelineEvent::UbtbLock);
        }
        if ubtb.unlocks > p.ubtb_unlocks {
            tel.record(rt, n, PipelineEvent::UbtbUnlock);
        }
        let mode = self.uoc.as_ref().map(|u| u.mode());
        if let (Some(from), Some(to)) = (p.uoc_mode, mode) {
            if from != to {
                tel.record(
                    rt,
                    n,
                    PipelineEvent::UocTransition { from: uoc_tag(from), to: uoc_tag(to) },
                );
            }
        }
        if uoc_loss {
            tel.record(rt, n, PipelineEvent::UocStateLoss);
        }
        // Prefetch activity: launches from the engines, fills and drops
        // from the memory system.
        let tp = self.memsys.twopass().stats();
        let mem = self.memsys.stats();
        let flows = [
            (tp.first_passes - p.tp_first, PrefetchKind::L1, 0u8),
            (self.memsys.buddy_stats().issued - p.buddy_issued, PrefetchKind::Buddy, 0),
            (
                self.memsys.standalone_stats().issued - p.standalone_issued,
                PrefetchKind::Standalone,
                0,
            ),
            (mem.l1_prefetch_fills - p.mem.l1_prefetch_fills, PrefetchKind::L1, 1),
            (mem.buddy_fills - p.mem.buddy_fills, PrefetchKind::Buddy, 1),
            (mem.standalone_fills - p.mem.standalone_fills, PrefetchKind::Standalone, 1),
            (tp.dropped - p.tp_dropped, PrefetchKind::L1, 2),
        ];
        for (count, kind, stage) in flows {
            if count > 0 {
                let event = match stage {
                    0 => PipelineEvent::PrefetchLaunch { kind, count },
                    1 => PipelineEvent::PrefetchFill { kind, count },
                    _ => PipelineEvent::PrefetchDrop { kind, count },
                };
                tel.record(rt, n, event);
            }
        }
        if self.stats.malformed_insts > p.malformed {
            tel.record(rt, n, PipelineEvent::MalformedInst { pc: inst.pc });
        }
        if let Some((stall_gap, rung)) = watchdog_trip {
            tel.record(rt, n, PipelineEvent::WatchdogTrip { gap: stall_gap, rung });
        }
        // Histograms: every retirement gap, and demand-load latency when
        // this step performed a load.
        tel.observe_retire_gap(gap);
        if mem.loads > p.mem.loads {
            tel.observe_load_latency(mem.total_load_latency - p.mem.total_load_latency);
        }
    }

    /// Run a warmup + detail slice of `gen`, returning measured results
    /// for the detail window.
    pub fn run_slice(
        &mut self,
        gen: &mut dyn TraceGen,
        plan: SlicePlan,
    ) -> Result<SliceResult, SimError> {
        self.run_slice_impl(gen, plan, None)
    }

    /// [`run_slice`](Simulator::run_slice) with a telemetry sink: events
    /// stream into the trace and the metrics registry is re-sampled into
    /// an epoch row every [`Telemetry::epoch_len`] instructions.
    pub fn run_slice_with(
        &mut self,
        gen: &mut dyn TraceGen,
        plan: SlicePlan,
        tel: &mut Telemetry,
    ) -> Result<SliceResult, SimError> {
        self.run_slice_impl(gen, plan, Some(tel))
    }

    fn run_slice_impl(
        &mut self,
        gen: &mut dyn TraceGen,
        plan: SlicePlan,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<SliceResult, SimError> {
        for _ in 0..plan.warmup {
            let inst = gen.next_inst();
            match tel.as_deref_mut() {
                Some(t) => {
                    self.step_impl(&inst, Some(t))?;
                    self.maybe_epoch(t);
                }
                None => {
                    self.step(&inst)?;
                }
            }
        }
        let measure = self.measure_begin();
        for _ in 0..plan.detail {
            let inst = gen.next_inst();
            match tel.as_deref_mut() {
                Some(t) => {
                    self.step_impl(&inst, Some(t))?;
                    self.maybe_epoch(t);
                }
                None => {
                    self.step(&inst)?;
                }
            }
        }
        Ok(self.measure_end(&measure))
    }

    /// Snapshot the counters a detail window is measured against. Pair
    /// with [`Simulator::measure_end`]; the scalar slice runner and the
    /// batched lockstep engine share this math.
    pub fn measure_begin(&self) -> SliceMeasure {
        SliceMeasure {
            start_insts: self.stats.instructions,
            start_cycle: self.stats.last_retire,
            fe0: *self.frontend.stats(),
            mem0: self.memsys.stats(),
        }
    }

    /// Derive the [`SliceResult`] for everything stepped since the
    /// paired [`Simulator::measure_begin`].
    pub fn measure_end(&self, m: &SliceMeasure) -> SliceResult {
        let instructions = self.stats.instructions - m.start_insts;
        let cycles = (self.stats.last_retire - m.start_cycle).max(1);
        let fe1 = *self.frontend.stats();
        let mem1 = self.memsys.stats();
        let mpki = (fe1.total_mispredicts() - m.fe0.total_mispredicts()) as f64 * 1000.0
            / instructions.max(1) as f64;
        let lat_num = mem1.total_load_latency - m.mem0.total_load_latency;
        let lat_den = (mem1.loads - m.mem0.loads).max(1);
        SliceResult {
            instructions,
            cycles,
            ipc: instructions as f64 / cycles as f64,
            mpki,
            avg_load_latency: lat_num as f64 / lat_den as f64,
            frontend: fe1,
            mem: mem1,
        }
    }

    /// Step every record of a decoded block in order — the per-member
    /// inner loop of the batched lockstep engine. Equivalent to calling
    /// [`Simulator::step`] once per record, so a batch that feeds each
    /// member the same chunk sequence it would have generated itself
    /// produces byte-identical state.
    pub fn run_block(&mut self, block: &[Inst]) -> Result<(), SimError> {
        for inst in block {
            self.step(inst)?;
        }
        Ok(())
    }

    /// Close the current epoch if the instruction count says it is due.
    fn maybe_epoch(&self, tel: &mut Telemetry) {
        if Telemetry::ACTIVE && tel.epoch_due(self.stats.instructions) {
            self.sample_telemetry(tel);
            tel.end_epoch(self.stats.instructions, self.stats.last_retire);
        }
    }

    /// Snapshot every statistics producer in the machine into `tel`'s
    /// metrics registry. Multi-instance producers (cache levels, TLBs)
    /// register under per-instance component paths.
    pub fn sample_telemetry(&self, tel: &mut Telemetry) {
        if !Telemetry::ACTIVE {
            return;
        }
        tel.sample(&self.stats);
        tel.sample(&self.memsys.stats());
        // Branch front end.
        tel.sample(self.frontend.stats());
        tel.sample(&self.frontend.ras_stats());
        tel.sample(&self.frontend.mrb_stats());
        tel.sample(&self.frontend.ubtb_stats());
        tel.sample(&self.frontend.btb_stats());
        tel.sample(&self.frontend.indirect_stats());
        tel.gauge("branch.ubtb", "built_fraction", self.frontend.ubtb().built_fraction());
        // Memory hierarchy, one instance per level.
        tel.sample_named("mem.cache.l1d", &self.memsys.l1d_stats());
        tel.sample_named("mem.cache.l2", &self.memsys.l2_stats());
        tel.sample_named("mem.cache.l3", &self.memsys.l3_stats());
        let tlb = self.memsys.tlb();
        tel.sample_named("mem.tlb.itlb", &tlb.itlb.stats());
        tel.sample_named("mem.tlb.dtlb", &tlb.dtlb.stats());
        if let Some(d15) = &tlb.dtlb15 {
            tel.sample_named("mem.tlb.dtlb15", &d15.stats());
        }
        tel.sample_named("mem.tlb.l2tlb", &tlb.l2tlb.stats());
        tel.sample_named("mem.mshr.mab", &self.memsys.mab_stats());
        // Prefetch engines.
        tel.sample(&self.memsys.l1_prefetcher().stride_stats());
        tel.sample(&self.memsys.l1_prefetcher().sms_stats());
        tel.sample(&self.memsys.l1_prefetcher().reorder_stats());
        tel.sample(&self.memsys.twopass().stats());
        tel.sample(&self.memsys.buddy_stats());
        tel.sample(&self.memsys.standalone_stats());
        // DRAM path.
        tel.sample(&self.memsys.dram_stats());
        tel.sample(&self.memsys.spec_stats());
        // UOC (M5+ generations only).
        if let Some(uoc) = &self.uoc {
            tel.sample(&uoc.stats());
            tel.gauge("uoc.cache", "occupancy", uoc.occupancy() as f64);
        }
        if let Some(fs) = self.fault_stats() {
            tel.sample(&fs);
        }
    }
}

/// Convenience: simulate one catalog slice on one generation.
pub fn run_slice_on(
    cfg: CoreConfig,
    slice: &exynos_trace::SliceSpec,
) -> Result<SliceResult, SimError> {
    let mut sim = Simulator::construct(cfg);
    let mut gen = slice.build()?;
    let plan = slice.plan;
    sim.run_slice(&mut *gen, plan)
}

mod snapshot_impl {
    use super::*;
    use crate::config::Generation;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn gen_to_u16(g: Generation) -> u16 {
        match g {
            Generation::M1 => 1,
            Generation::M2 => 2,
            Generation::M3 => 3,
            Generation::M4 => 4,
            Generation::M5 => 5,
            Generation::M6 => 6,
        }
    }

    fn gen_from_u16(v: u16) -> Result<Generation, SnapshotError> {
        Ok(match v {
            1 => Generation::M1,
            2 => Generation::M2,
            3 => Generation::M3,
            4 => Generation::M4,
            5 => Generation::M5,
            6 => Generation::M6,
            _ => return Err(SnapshotError::Corrupt { what: "generation tag" }),
        })
    }

    impl Snapshot for Watchdog {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::WATCHDOG);
            enc.u64(self.threshold);
            enc.u32(self.max_recoveries);
            enc.u32(self.recoveries);
            enc.u32(self.progress_streak);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::WATCHDOG)?;
            self.threshold = dec.u64()?;
            self.max_recoveries = dec.u32()?;
            self.recoveries = dec.u32()?;
            self.progress_streak = dec.u32()?;
            dec.end_section()
        }
    }

    impl Snapshot for SimStats {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::SIM_STATS);
            enc.u64(self.instructions);
            enc.u64(self.last_retire);
            enc.u64(self.loads);
            enc.u64(self.uoc_supplied);
            enc.u64(self.malformed_insts);
            enc.u64(self.predictor_corruptions);
            enc.u64(self.uoc_recoveries);
            enc.u64(self.watchdog_events);
            enc.u64(self.watchdog_recoveries);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::SIM_STATS)?;
            self.instructions = dec.u64()?;
            self.last_retire = dec.u64()?;
            self.loads = dec.u64()?;
            self.uoc_supplied = dec.u64()?;
            self.malformed_insts = dec.u64()?;
            self.predictor_corruptions = dec.u64()?;
            self.uoc_recoveries = dec.u64()?;
            self.watchdog_events = dec.u64()?;
            self.watchdog_recoveries = dec.u64()?;
            dec.end_section()
        }
    }

    impl Snapshot for Simulator {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::SIM);
            self.frontend.save(enc);
            match &self.uoc {
                Some(u) => {
                    enc.u8(1);
                    u.save(enc);
                }
                None => enc.u8(0),
            }
            self.memsys.save(enc);
            self.ports.save(enc);
            enc.u64(self.fetch_cycle);
            enc.u32(self.fetch_slots);
            enc.u64(self.cur_fetch_line);
            for r in &self.reg_ready {
                enc.u64(*r);
            }
            for b in &self.reg_by_load {
                enc.bool(*b);
            }
            enc.seq(self.rob.len());
            for c in &self.rob {
                enc.u64(*c);
            }
            enc.seq(self.int_inflight.len());
            for c in &self.int_inflight {
                enc.u64(*c);
            }
            enc.seq(self.fp_inflight.len());
            for c in &self.fp_inflight {
                enc.u64(*c);
            }
            enc.u64(self.last_retire);
            enc.u32(self.retire_in_cycle);
            self.stats.save(enc);
            match &self.injector {
                Some(i) => {
                    enc.u8(1);
                    i.save(enc);
                }
                None => enc.u8(0),
            }
            self.watchdog.save(enc);
            enc.bool(self.strict_decode);
            enc.u32(self.consecutive_corruptions);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::SIM)?;
            self.frontend.restore(dec)?;
            let has_uoc = match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Corrupt { what: "uoc presence flag" }),
            };
            match (&mut self.uoc, has_uoc) {
                (Some(u), true) => u.restore(dec)?,
                (None, false) => {}
                (mine, _) => {
                    return Err(SnapshotError::Geometry {
                        what: "uoc presence",
                        expected: u64::from(mine.is_some()),
                        found: u64::from(has_uoc),
                    })
                }
            }
            self.memsys.restore(dec)?;
            self.ports.restore(dec)?;
            self.fetch_cycle = dec.u64()?;
            self.fetch_slots = dec.u32()?;
            self.cur_fetch_line = dec.u64()?;
            for r in &mut self.reg_ready {
                *r = dec.u64()?;
            }
            for b in &mut self.reg_by_load {
                *b = dec.bool()?;
            }
            let nr = dec.seq(8)?;
            if nr > self.rob_cap {
                return Err(SnapshotError::Geometry {
                    what: "rob occupancy",
                    expected: self.rob_cap as u64,
                    found: nr as u64,
                });
            }
            self.rob.clear();
            for _ in 0..nr {
                self.rob.push_back(dec.u64()?);
            }
            let ni = dec.seq(8)?;
            self.int_inflight.clear();
            for _ in 0..ni {
                self.int_inflight.push_back(dec.u64()?);
            }
            let nf = dec.seq(8)?;
            self.fp_inflight.clear();
            for _ in 0..nf {
                self.fp_inflight.push_back(dec.u64()?);
            }
            self.last_retire = dec.u64()?;
            self.retire_in_cycle = dec.u32()?;
            self.stats.restore(dec)?;
            let has_injector = match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Corrupt { what: "injector presence flag" }),
            };
            if has_injector {
                // The serialized image carries the full plan, so a fresh
                // injector is a valid restore target regardless of what the
                // target simulator had attached.
                let mut inj = FaultInjector::new(FaultPlan::none());
                inj.restore(dec)?;
                self.injector = Some(inj);
            } else {
                self.injector = None;
            }
            self.watchdog.restore(dec)?;
            self.strict_decode = dec.bool()?;
            self.consecutive_corruptions = dec.u32()?;
            dec.end_section()
        }
    }

    impl Simulator {
        /// Serialize the complete microarchitectural state into the
        /// versioned checkpoint format (see DESIGN.md "Snapshot format").
        /// The image is self-contained: it records the generation, the
        /// fault-injection plan, and the watchdog configuration, so
        /// [`Simulator::resume`] needs nothing but the bytes.
        pub fn checkpoint(&self) -> Vec<u8> {
            let mut enc = Encoder::with_header(gen_to_u16(self.cfg.gen));
            self.save(&mut enc);
            enc.finish()
        }

        /// Rebuild a simulator from a checkpoint image produced by
        /// [`Simulator::checkpoint`]. The generation is read from the
        /// image header and the stock configuration for that generation is
        /// used; see [`Simulator::resume_with_config`] for customized
        /// configurations.
        pub fn resume(bytes: &[u8]) -> Result<Simulator, SimError> {
            let mut dec = Decoder::new(bytes);
            let meta = dec.header()?;
            let gen = gen_from_u16(meta)?;
            Simulator::resume_into(CoreConfig::for_generation(gen), dec)
        }

        /// [`resume`](Simulator::resume) against a caller-supplied
        /// configuration (for non-stock geometries). The configuration
        /// must match the one the checkpoint was taken from: every
        /// geometry mismatch (table sizes, optional-component presence,
        /// generation tag) is a typed [`SimError::SnapshotDecode`].
        pub fn resume_with_config(cfg: CoreConfig, bytes: &[u8]) -> Result<Simulator, SimError> {
            let mut dec = Decoder::new(bytes);
            let meta = dec.header()?;
            if meta != gen_to_u16(cfg.gen) {
                return Err(SnapshotError::Geometry {
                    what: "generation tag",
                    expected: u64::from(gen_to_u16(cfg.gen)),
                    found: u64::from(meta),
                }
                .into());
            }
            Simulator::resume_into(cfg, dec)
        }

        fn resume_into(cfg: CoreConfig, mut dec: Decoder<'_>) -> Result<Simulator, SimError> {
            let mut sim = Simulator::construct(cfg);
            sim.restore(&mut dec)?;
            dec.finish()?;
            Ok(sim)
        }

        /// Step the simulator through `n` instructions from `gen` without
        /// measuring a detail window — the warm-up half of a
        /// checkpoint-then-fork workflow.
        pub fn run_warmup(&mut self, gen: &mut dyn TraceGen, n: u64) -> Result<(), SimError> {
            for _ in 0..n {
                let inst = gen.next_inst();
                self.step(&inst)?;
            }
            Ok(())
        }
    }
}
