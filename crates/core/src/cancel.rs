//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the code
//! driving a simulation and the code that may need to stop it (a service
//! worker enforcing a deadline, a test harness killing a job). The step
//! loop polls the token every [`CANCEL_POLL_PERIOD`] instructions — often
//! enough that a deadline is honoured within microseconds of wall time,
//! rarely enough that the hot path pays one relaxed atomic load per
//! poll window.
//!
//! Cancellation is *cooperative*: nothing is torn down asynchronously.
//! When the poll observes a cancelled token the step returns
//! [`SimError::Cancelled`](crate::error::SimError::Cancelled) and the
//! simulator is left in a consistent (checkpointable) state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How often (in instructions) the step loop polls its token. A power of
/// two so the check compiles to a mask test.
pub const CANCEL_POLL_PERIOD: u64 = 256;

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

/// Shared cancellation flag plus an optional wall-clock deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called (does not
    /// consider the deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Arm (or re-arm) the wall-clock deadline.
    pub fn set_deadline(&self, at: Instant) {
        if let Ok(mut d) = self.inner.deadline.lock() {
            *d = Some(at);
        }
    }

    /// Whether an armed deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        match self.inner.deadline.lock() {
            Ok(d) => matches!(*d, Some(at) if Instant::now() >= at),
            Err(_) => false,
        }
    }

    /// The poll the step loop performs: cancelled flag or expired
    /// deadline. Returns `Some(true)` when stopping because the deadline
    /// passed, `Some(false)` for an explicit cancel, `None` to continue.
    pub fn should_stop(&self) -> Option<bool> {
        if self.is_cancelled() {
            return Some(false);
        }
        if self.deadline_exceeded() {
            return Some(true);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.should_stop().is_none());
        b.cancel();
        assert!(a.is_cancelled());
        assert_eq!(a.should_stop(), Some(false));
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.should_stop().is_none());
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.deadline_exceeded());
        assert_eq!(t.should_stop(), Some(true));
        // An explicit cancel takes precedence in the report.
        t.cancel();
        assert_eq!(t.should_stop(), Some(false));
    }
}
