//! Per-generation core configurations — Table I of the paper.

use exynos_branch::FrontendConfig;
use exynos_dram::DramConfig;
use exynos_mem::MemGenConfig;
use exynos_prefetch::{L1PrefetcherConfig, StandaloneConfig};
use exynos_uoc::UocConfig;

/// The six Exynos M-series generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Generation {
    /// M1 (14nm, Galaxy S7 era).
    M1,
    /// M2 (10nm LPE).
    M2,
    /// M3 (10nm LPP, 6-wide).
    M3,
    /// M4 (8nm LPP).
    M4,
    /// M5 (7nm).
    M5,
    /// M6 (5nm, completed design).
    M6,
}

impl Generation {
    /// All generations, in order.
    pub const ALL: [Generation; 6] = [
        Generation::M1,
        Generation::M2,
        Generation::M3,
        Generation::M4,
        Generation::M5,
        Generation::M6,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Generation::M1 => "M1",
            Generation::M2 => "M2",
            Generation::M3 => "M3",
            Generation::M4 => "M4",
            Generation::M5 => "M5",
            Generation::M6 => "M6",
        }
    }
}

impl std::fmt::Display for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution-port complement (Table I "Execution Unit Details").
///
/// "S ALUs handle add/shift/logical; C ALUs handle simple plus
/// mul/indirect-branch; CD ALUs handle C plus div; BR handle only direct
/// branches"; "Generic units can perform either loads or stores".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ports {
    /// Simple integer ALUs.
    pub s: u32,
    /// Complex (mul-capable) ALUs.
    pub c: u32,
    /// Complex + divide ALUs.
    pub cd: u32,
    /// Direct-branch units.
    pub br: u32,
    /// Load pipes.
    pub ld: u32,
    /// Store pipes.
    pub st: u32,
    /// Generic (load-or-store) pipes.
    pub gen: u32,
    /// FMAC-capable FP pipes.
    pub fmac: u32,
    /// FADD-only FP pipes.
    pub fadd: u32,
}

/// Execution latencies (Table I "Latencies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Minimum branch-mispredict pipeline-refill penalty.
    pub mispredict: u32,
    /// L1D hit latency.
    pub l1_hit: u32,
    /// L1D hit latency for load-to-load cascades (M4+; equals `l1_hit`
    /// otherwise).
    pub l1_cascade: u32,
    /// FMAC latency.
    pub fmac: u32,
    /// FMUL latency.
    pub fmul: u32,
    /// FADD latency.
    pub fadd: u32,
    /// Integer multiply latency.
    pub imul: u32,
    /// Integer divide latency.
    pub idiv: u32,
}

/// A complete per-generation core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Which generation this is.
    pub gen: Generation,
    /// Decode/rename/retire width (4 → 6 → 8).
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Integer physical registers.
    pub int_prf: usize,
    /// FP physical registers.
    pub fp_prf: usize,
    /// Execution ports.
    pub ports: Ports,
    /// Core latencies.
    pub lat: Latencies,
    /// Branch-prediction front end.
    pub frontend: FrontendConfig,
    /// Cache/TLB/miss-buffer geometry.
    pub mem: MemGenConfig,
    /// DRAM path.
    pub dram: DramConfig,
    /// L1 prefetcher complement.
    pub l1_prefetch: L1PrefetcherConfig,
    /// Buddy prefetcher present (M4+; requires sectored L2).
    pub buddy: bool,
    /// Standalone L2/L3 prefetcher (M5+).
    pub standalone: Option<StandaloneConfig>,
    /// Speculative DRAM read (M5+).
    pub spec_read: bool,
    /// Micro-op cache (M5+).
    pub uoc: Option<UocConfig>,
}

impl CoreConfig {
    /// M1: 4-wide, 96-entry ROB, 2S+1CD+BR, 1L/1S, 2 FP pipes.
    pub fn m1() -> CoreConfig {
        CoreConfig {
            gen: Generation::M1,
            width: 4,
            rob: 96,
            int_prf: 96,
            fp_prf: 96,
            ports: Ports { s: 2, c: 0, cd: 1, br: 1, ld: 1, st: 1, gen: 0, fmac: 1, fadd: 1 },
            lat: Latencies {
                mispredict: 14,
                l1_hit: 4,
                l1_cascade: 4,
                fmac: 5,
                fmul: 4,
                fadd: 3,
                imul: 4,
                idiv: 12,
            },
            frontend: FrontendConfig::m1(),
            mem: MemGenConfig::m1(),
            dram: DramConfig::m1(),
            l1_prefetch: L1PrefetcherConfig::m1(),
            buddy: false,
            standalone: None,
            spec_read: false,
            uoc: None,
        }
    }

    /// M2: M1 resources with efficiency improvements — "several
    /// efficiency improvements, including a number of deeper queues not
    /// shown in Table I" (§III) — modeled as a slightly larger ROB and
    /// deeper miss queues.
    pub fn m2() -> CoreConfig {
        let mut c = CoreConfig::m1();
        c.gen = Generation::M2;
        c.rob = 100;
        c.frontend = FrontendConfig::m2();
        c.mem = MemGenConfig::m2();
        c.mem.miss_buffers = 10;
        c.mem.l2_miss_buffers = 20;
        c
    }

    /// M3: 6-wide, 228-entry ROB, 2L pipes, 3 FMACs, private L2 + L3.
    pub fn m3() -> CoreConfig {
        CoreConfig {
            gen: Generation::M3,
            width: 6,
            rob: 228,
            int_prf: 192,
            fp_prf: 192,
            ports: Ports { s: 2, c: 1, cd: 1, br: 1, ld: 2, st: 1, gen: 0, fmac: 3, fadd: 0 },
            lat: Latencies {
                mispredict: 16,
                l1_hit: 4,
                l1_cascade: 4,
                fmac: 4,
                fmul: 3,
                fadd: 2,
                imul: 4,
                idiv: 12,
            },
            frontend: FrontendConfig::m3(),
            mem: MemGenConfig::m3(),
            dram: DramConfig::m1(),
            l1_prefetch: L1PrefetcherConfig::m3(),
            buddy: false,
            standalone: None,
            spec_read: false,
            uoc: None,
        }
    }

    /// M4: MAB-based misses, buddy prefetcher, data fast path, load
    /// cascading, 1L/1S/1G pipes.
    pub fn m4() -> CoreConfig {
        let mut c = CoreConfig::m3();
        c.gen = Generation::M4;
        c.ports = Ports { s: 2, c: 1, cd: 1, br: 1, ld: 1, st: 1, gen: 1, fmac: 3, fadd: 0 };
        c.lat.l1_hit = 4;
        c.lat.l1_cascade = 3;
        c.int_prf = 192;
        c.fp_prf = 176;
        c.frontend = FrontendConfig::m4();
        c.mem = MemGenConfig::m4();
        c.dram = DramConfig::m4();
        c.buddy = true;
        c
    }

    /// M5: 4S ALUs, ZAT/ZOT front end, UOC, standalone prefetcher,
    /// speculative reads, early page activate.
    pub fn m5() -> CoreConfig {
        let mut c = CoreConfig::m4();
        c.gen = Generation::M5;
        c.ports.s = 4;
        c.frontend = FrontendConfig::m5();
        c.mem = MemGenConfig::m5();
        c.dram = DramConfig::m5();
        c.standalone = Some(StandaloneConfig::default());
        c.spec_read = true;
        c.uoc = Some(UocConfig::default());
        c
    }

    /// M6: 8-wide, 256-entry ROB, 224 PRFs, 4S+2CD+2BR, 4 FMACs.
    pub fn m6() -> CoreConfig {
        let mut c = CoreConfig::m5();
        c.gen = Generation::M6;
        c.width = 8;
        c.rob = 256;
        c.int_prf = 224;
        c.fp_prf = 224;
        c.ports = Ports { s: 4, c: 0, cd: 2, br: 2, ld: 1, st: 1, gen: 1, fmac: 4, fadd: 0 };
        c.frontend = FrontendConfig::m6();
        c.mem = MemGenConfig::m6();
        c
    }

    /// Configuration for `gen`.
    pub fn for_generation(gen: Generation) -> CoreConfig {
        match gen {
            Generation::M1 => CoreConfig::m1(),
            Generation::M2 => CoreConfig::m2(),
            Generation::M3 => CoreConfig::m3(),
            Generation::M4 => CoreConfig::m4(),
            Generation::M5 => CoreConfig::m5(),
            Generation::M6 => CoreConfig::m6(),
        }
    }

    /// All six configurations in order.
    pub fn all_generations() -> Vec<CoreConfig> {
        Generation::ALL.iter().map(|&g| CoreConfig::for_generation(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_widths_and_robs() {
        let expect = [(4, 96), (4, 100), (6, 228), (6, 228), (6, 228), (8, 256)];
        for (cfg, (w, rob)) in CoreConfig::all_generations().iter().zip(expect) {
            assert_eq!(cfg.width, w, "{}", cfg.gen);
            assert_eq!(cfg.rob, rob, "{}", cfg.gen);
        }
    }

    #[test]
    fn table1_prfs() {
        let expect = [(96, 96), (96, 96), (192, 192), (192, 176), (192, 176), (224, 224)];
        for (cfg, (i, f)) in CoreConfig::all_generations().iter().zip(expect) {
            assert_eq!((cfg.int_prf, cfg.fp_prf), (i, f), "{}", cfg.gen);
        }
    }

    #[test]
    fn table1_mispredict_penalties() {
        let expect = [14, 14, 16, 16, 16, 16];
        for (cfg, p) in CoreConfig::all_generations().iter().zip(expect) {
            assert_eq!(cfg.lat.mispredict, p, "{}", cfg.gen);
            assert_eq!(cfg.frontend.mispredict_penalty, p, "frontend agrees");
        }
    }

    #[test]
    fn feature_rollout() {
        assert!(CoreConfig::m4().buddy && !CoreConfig::m3().buddy);
        assert!(CoreConfig::m5().uoc.is_some() && CoreConfig::m4().uoc.is_none());
        assert!(CoreConfig::m5().spec_read && !CoreConfig::m4().spec_read);
        assert!(CoreConfig::m5().standalone.is_some());
        assert!(CoreConfig::m4().dram.fast_path && !CoreConfig::m3().dram.fast_path);
        assert!(CoreConfig::m5().dram.early_activate);
    }

    #[test]
    fn fp_latencies_improve_in_m3() {
        let m1 = CoreConfig::m1().lat;
        let m3 = CoreConfig::m3().lat;
        assert_eq!((m1.fmac, m1.fmul, m1.fadd), (5, 4, 3));
        assert_eq!((m3.fmac, m3.fmul, m3.fadd), (4, 3, 2));
    }

    #[test]
    fn cascade_only_from_m4() {
        assert_eq!(CoreConfig::m3().lat.l1_cascade, 4);
        assert_eq!(CoreConfig::m4().lat.l1_cascade, 3);
        assert!(CoreConfig::m4().mem.load_cascade);
    }
}
