//! The composed memory system: L1I/L1D → L2 → (exclusive) L3 → DRAM, with
//! TLBs, MAB occupancy, every prefetch engine of §VII–§VIII, and the §IX
//! latency features (fast path, speculative read, early page activate).
//!
//! Timing is call-tree based: a demand load returns the cycle its data is
//! available, with in-flight-miss limits (MABs), DRAM bank conflicts and
//! prefetch bandwidth effects folded in through shared state.

use crate::config::CoreConfig;
use crate::error::SimError;
use exynos_dram::{MemoryController, SnoopFilter, SpecDecision, SpecReadController};
use exynos_mem::{AccessKind, Cache, InsertPriority, LineMeta, MissBuffers, TlbHierarchy, Victims};
use exynos_prefetch::{
    BuddyPrefetcher, L1Prefetcher, L1PrefetchRequest, PassMode, StandalonePrefetcher,
    TwoPassController,
};
use std::collections::VecDeque;

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// Demand loads served.
    pub loads: u64,
    /// Demand stores served.
    pub stores: u64,
    /// Loads hitting the L1D.
    pub l1_hits: u64,
    /// Loads served by the L2.
    pub l2_hits: u64,
    /// Loads served by the L3.
    pub l3_hits: u64,
    /// Loads served by DRAM.
    pub dram_loads: u64,
    /// Sum of load-to-use latencies (cycles).
    pub total_load_latency: u64,
    /// Load stalls waiting for a free MAB.
    pub mab_stalls: u64,
    /// L1 prefetch fills completed.
    pub l1_prefetch_fills: u64,
    /// Buddy prefetch fills into the L2.
    pub buddy_fills: u64,
    /// Standalone prefetch fills into the L2.
    pub standalone_fills: u64,
    /// Speculative DRAM reads that saved the tag-check serialization.
    pub spec_read_wins: u64,
    /// Instruction fetches that missed the L1I.
    pub icache_misses: u64,
}

impl MemStats {
    /// Average demand-load latency in cycles.
    pub fn avg_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.total_load_latency as f64 / self.loads as f64
        }
    }
}

/// The composed per-generation memory system.
#[derive(Debug, Clone)]
pub struct MemSystem {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    tlb: TlbHierarchy,
    mabs: MissBuffers,
    l1pf: L1Prefetcher,
    twopass: TwoPassController,
    buddy: Option<BuddyPrefetcher>,
    /// Lines recently brought in by the buddy prefetcher (usefulness
    /// tracking), 64 B line addresses.
    buddy_lines: VecDeque<u64>,
    standalone: Option<StandalonePrefetcher>,
    spec: SpecReadController,
    snoop: SnoopFilter,
    dram: MemoryController,
    l1_hit_lat: u32,
    l1_cascade_lat: u32,
    stats: MemStats,
    /// Reused line-address buffer for prefetcher output (taken with
    /// `mem::take` around each use so per-access allocations disappear
    /// from the step loop).
    scratch_lines: Vec<u64>,
    /// Reused L1-prefetch-request buffer, same discipline.
    scratch_reqs: Vec<L1PrefetchRequest>,
}

impl MemSystem {
    /// Build the memory system for `cfg`.
    pub fn new(cfg: &CoreConfig) -> MemSystem {
        MemSystem {
            l1i: Cache::new(cfg.mem.l1i),
            l1d: Cache::new(cfg.mem.l1d),
            l2: Cache::new(cfg.mem.l2),
            l3: cfg.mem.l3.map(Cache::new),
            tlb: TlbHierarchy::new(&cfg.mem.tlb),
            mabs: MissBuffers::new(cfg.mem.miss_buffers),
            l1pf: L1Prefetcher::new(&cfg.l1_prefetch),
            twopass: TwoPassController::standard(),
            buddy: cfg.buddy.then(BuddyPrefetcher::new),
            buddy_lines: VecDeque::new(),
            standalone: cfg.standalone.clone().map(StandalonePrefetcher::new),
            spec: SpecReadController::new(cfg.spec_read),
            snoop: SnoopFilter::new(65536, 8),
            dram: MemoryController::new(cfg.dram.clone()),
            l1_hit_lat: cfg.lat.l1_hit,
            l1_cascade_lat: cfg.lat.l1_cascade,
            stats: MemStats::default(),
            scratch_lines: Vec::new(),
            scratch_reqs: Vec::new(),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// L1 prefetcher access (for reporting).
    pub fn l1_prefetcher(&self) -> &L1Prefetcher {
        &self.l1pf
    }

    /// Two-pass controller access (for reporting).
    pub fn twopass(&self) -> &TwoPassController {
        &self.twopass
    }

    /// Buddy prefetcher stats (zeroes when absent).
    pub fn buddy_stats(&self) -> exynos_prefetch::buddy::BuddyStats {
        self.buddy.as_ref().map(|b| b.stats()).unwrap_or_default()
    }

    /// Standalone prefetcher stats (zeroes when absent).
    pub fn standalone_stats(&self) -> exynos_prefetch::standalone::StandaloneStats {
        self.standalone.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Speculative-read stats.
    pub fn spec_stats(&self) -> exynos_dram::SpecReadStats {
        self.spec.stats()
    }

    /// DRAM stats.
    pub fn dram_stats(&self) -> exynos_dram::DramStats {
        self.dram.stats()
    }

    /// Read-only L1D array access (batched tag-probe paths).
    pub fn l1d(&self) -> &exynos_mem::Cache {
        &self.l1d
    }

    /// L1D array stats.
    pub fn l1d_stats(&self) -> exynos_mem::CacheStats {
        self.l1d.stats()
    }

    /// L2 array stats.
    pub fn l2_stats(&self) -> exynos_mem::CacheStats {
        self.l2.stats()
    }

    /// L3 array stats (zeroes when absent).
    pub fn l3_stats(&self) -> exynos_mem::CacheStats {
        self.l3.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// L3 occupancy in lines (0 when absent).
    pub fn l3_occupancy(&self) -> usize {
        self.l3.as_ref().map(|c| c.occupancy()).unwrap_or(0)
    }

    /// Residency of `addr`'s line in (L1D, L2, L3) — side-effect-free,
    /// for invariant checking (the L3 must stay exclusive of the L2).
    pub fn line_residency(&self, addr: u64) -> (bool, bool, bool) {
        (
            self.l1d.probe(addr),
            self.l2.probe(addr),
            self.l3.as_ref().map(|c| c.probe(addr)).unwrap_or(false),
        )
    }

    // ------------------------------------------------------------------
    // Inner-level plumbing
    // ------------------------------------------------------------------

    /// Handle L2 victims into the exclusive L3 with the coordinated
    /// castout policy (§VIII.A): reuse ≥ 2 → elevated; reuse ≥ 1 →
    /// ordinary; never-reused (or pure second-pass) lines bypass the L3.
    fn castout_l2_victims(&mut self, victims: Victims) {
        // Buddy usefulness: a buddy-brought line evicted without a demand
        // hit was wasted bandwidth.
        for v in &victims {
            if let Some(pos) = self.buddy_lines.iter().position(|&l| l == v.addr / 64) {
                self.buddy_lines.remove(pos);
                if let Some(b) = &mut self.buddy {
                    if v.meta.demand_hit {
                        b.on_buddy_used();
                    } else {
                        b.on_buddy_wasted();
                    }
                }
            }
            if v.meta.prefetched {
                if let Some(sp) = &mut self.standalone {
                    sp.on_prefetch_outcome(v.meta.demand_hit);
                }
            }
        }
        let Some(l3) = &mut self.l3 else {
            for v in &victims {
                self.snoop.remove(v.addr / 64);
            }
            return;
        };
        for v in victims {
            // Coordinated policy: observed reuse (L2 hits / L3
            // re-allocations) earns the elevated state; demanded lines
            // allocate ordinarily; prefetched-but-never-demanded lines
            // (dead prefetches, incl. second-pass fills) bypass the L3
            // entirely so transient streams don't wash it out.
            let prio = if v.meta.reuse >= 2 {
                InsertPriority::Elevated
            } else if v.meta.demand_hit || v.dirty {
                InsertPriority::Ordinary
            } else {
                InsertPriority::Bypass
            };
            if prio == InsertPriority::Bypass {
                self.snoop.remove(v.addr / 64);
                continue;
            }
            let l3_victims = l3.fill(v.addr, AccessKind::Writeback, v.meta, prio);
            for lv in l3_victims {
                self.snoop.remove(lv.addr / 64);
            }
        }
    }

    /// Bring `addr`'s line to the L2 level and return the cycle its data
    /// is at the L2 (demand path). Handles L3 exclusivity, DRAM, the §IX
    /// features, buddy + standalone prefetch hooks.
    fn fetch_to_l2(&mut self, pc: u64, addr: u64, now: u64, kind: AccessKind) -> u64 {
        let line = addr / 64;
        let l2_lat = self.l2.config().latency as u64;
        // Standalone prefetcher observes the L2-level access stream
        // (demands and core prefetches alike).
        if self.standalone.is_some() {
            let mut standalone_pf = std::mem::take(&mut self.scratch_lines);
            if let Some(sp) = &mut self.standalone {
                sp.on_l2_access_into(line, kind == AccessKind::Demand, &mut standalone_pf);
            }
            for &pf_line in &standalone_pf {
                self.background_fill_l2(pf_line * 64, now, AccessKind::Prefetch);
                self.stats.standalone_fills += 1;
            }
            self.scratch_lines = standalone_pf;
        }
        // Speculative read decision happens in parallel with the L2 tags.
        let spec = if kind == AccessKind::Demand {
            self.spec.decide(pc, line, &self.snoop)
        } else {
            SpecDecision::NoSpeculation
        };
        // L2 tags.
        let meta_before = self.l2.meta(addr);
        if self.l2.access(addr, kind) {
            if kind == AccessKind::Demand {
                self.stats.l2_hits += 1;
                // Buddy usefulness: first demand touch of a buddy line.
                if let Some(m) = meta_before {
                    if m.prefetched && !m.demand_hit {
                        if let Some(pos) = self.buddy_lines.iter().position(|&l| l == line) {
                            self.buddy_lines.remove(pos);
                            if let Some(b) = &mut self.buddy {
                                b.on_buddy_used();
                            }
                        } else if let Some(sp) = &mut self.standalone {
                            sp.on_prefetch_outcome(true);
                        }
                    }
                }
            }
            self.spec.resolve(pc, spec, true);
            return now + l2_lat;
        }
        // L2 demand miss: the early page-activate hint fires as soon as
        // the read is classified latency-critical (§IX) — ahead of the
        // buddy prefetch and the L3 tag check.
        if kind == AccessKind::Demand {
            self.dram.activate_hint(addr, now);
        }
        // Buddy prefetch of the neighbour sector.
        if kind == AccessKind::Demand {
            let buddy_req = match &mut self.buddy {
                Some(b) => b.on_l2_demand_miss(addr, self.l2.buddy_valid(addr)),
                None => None,
            };
            if let Some(baddr) = buddy_req {
                // The buddy request flows the ordinary (tag-checked) path
                // to memory — it does not get the latency-critical bypass.
                let l3_lat = self.l3.as_ref().map(|c| c.config().latency as u64).unwrap_or(0);
                self.background_fill_l2(baddr, now + l3_lat, AccessKind::Prefetch);
                self.buddy_lines.push_back(baddr / 64);
                if self.buddy_lines.len() > 64 {
                    self.buddy_lines.pop_front();
                }
                self.stats.buddy_fills += 1;
            }
        }
        // L3 (exclusive) tags, checked after the L2.
        let l3_swap = self.l3.as_mut().and_then(|l3| {
            if !l3.access(addr, kind) {
                return None;
            }
            let (mut meta, dirty) = l3.invalidate(addr).unwrap_or((LineMeta::default(), false));
            if !meta.second_pass {
                meta.reuse = meta.reuse.saturating_add(1).min(3);
            }
            Some((meta, dirty, l3.config().latency as u64))
        });
        if let Some((meta, dirty, l3_lat)) = l3_swap {
            // Exclusive swap: line moves L3 → L2, reuse credited
            // ("subsequent re-allocation from L3").
            let victims = self.l2.fill(addr, kind, meta, InsertPriority::Elevated);
            if dirty {
                self.l2.mark_dirty(addr);
            }
            self.castout_l2_victims(victims);
            if kind == AccessKind::Demand {
                self.stats.l3_hits += 1;
            }
            self.spec.resolve(pc, spec, true);
            return now + l2_lat + l3_lat;
        }
        // Full miss: DRAM (the activate hint already fired at L2-miss
        // classification); the read launches after the (possibly bypassed)
        // tag checks.
        let l3_lat = self.l3.as_ref().map(|c| c.config().latency as u64).unwrap_or(0);
        let launch = match spec {
            SpecDecision::Speculate => {
                self.stats.spec_read_wins += 1;
                now
            }
            _ => now + l2_lat + l3_lat,
        };
        let done = self.dram.read(addr, launch);
        if kind == AccessKind::Demand {
            self.stats.dram_loads += 1;
        }
        self.spec.resolve(pc, spec, false);
        // Fill the L2 (the L3 stays out of the way: exclusive).
        let meta = LineMeta {
            second_pass: kind == AccessKind::PrefetchFirstPass,
            ..LineMeta::default()
        };
        let victims = self.l2.fill(addr, kind, meta, InsertPriority::Elevated);
        self.castout_l2_victims(victims);
        self.snoop.insert(line);
        done
    }

    /// A background (prefetch) fill to the L2 level: affects cache and
    /// DRAM state but returns no latency to the core.
    fn background_fill_l2(&mut self, addr: u64, now: u64, kind: AccessKind) {
        if self.l2.probe(addr) {
            return;
        }
        // L3 hit satisfies the prefetch without DRAM traffic.
        let l3_line = match self.l3.as_mut() {
            Some(l3) if l3.probe(addr) => l3.invalidate(addr),
            _ => None,
        };
        if let Some((meta, dirty)) = l3_line {
            let victims = self.l2.fill(addr, kind, meta, InsertPriority::Ordinary);
            if dirty {
                self.l2.mark_dirty(addr);
            }
            self.castout_l2_victims(victims);
            return;
        }
        // Low-priority DRAM read: deprioritized behind demand traffic, so
        // prefetch bursts never inflate demand latency.
        let _ = self.dram.read_background(addr, now);
        let meta = LineMeta {
            second_pass: kind == AccessKind::PrefetchFirstPass,
            ..LineMeta::default()
        };
        let victims = self.l2.fill(addr, kind, meta, InsertPriority::Ordinary);
        self.castout_l2_victims(victims);
        self.snoop.insert(addr / 64);
    }

    /// Fill `addr` into the L1D (prefetch second pass / one pass).
    fn fill_l1(&mut self, addr: u64, now: u64) {
        if self.l1d.probe(addr) {
            return;
        }
        // One-pass mode: the L2 may not have the line yet.
        if !self.l2.probe(addr) {
            if self.twopass.mode() == PassMode::OnePass {
                self.twopass.on_one_pass_l2_miss();
            }
            self.background_fill_l2(addr, now, AccessKind::Prefetch);
        } else {
            self.l2.access(addr, AccessKind::Prefetch);
        }
        let victims = self.l1d.fill(addr, AccessKind::Prefetch, LineMeta::default(), InsertPriority::Elevated);
        for v in victims {
            // L1 victims retire into the L2 (which is not exclusive of the
            // L1 here; only refresh recency / dirtiness).
            if v.dirty {
                if self.l2.probe(v.addr) {
                    self.l2.mark_dirty(v.addr);
                } else {
                    let vict = self.l2.fill(v.addr, AccessKind::Writeback, v.meta, InsertPriority::Ordinary);
                    self.l2.mark_dirty(v.addr);
                    self.castout_l2_victims(vict);
                }
            }
        }
        self.stats.l1_prefetch_fills += 1;
    }

    /// Issue L1 prefetch requests through the one-pass/two-pass delivery
    /// scheme (§VII.B), preloading translations along the way.
    fn issue_l1_prefetches(&mut self, requests: &[L1PrefetchRequest], start: u64) {
        for &req in requests {
            let addr = req.line * 64;
            self.tlb.prefetch_translation(addr);
            if self.l1d.probe(addr) {
                continue;
            }
            match self.twopass.mode() {
                PassMode::TwoPass => {
                    let l2_hit = self.l2.probe(addr);
                    let ready = if l2_hit {
                        start + self.l2.config().latency as u64
                    } else {
                        self.background_fill_l2(addr, start, AccessKind::PrefetchFirstPass);
                        start + 60
                    };
                    if req.into_l1 {
                        self.twopass.enqueue(req.line, l2_hit, ready);
                    }
                }
                PassMode::OnePass => {
                    if req.into_l1 {
                        self.twopass.enqueue(req.line, true, start);
                    } else if !self.l2.probe(addr) {
                        self.background_fill_l2(addr, start, AccessKind::PrefetchFirstPass);
                    }
                }
            }
        }
    }

    /// Drain pending prefetch fills whose data is ready, bounded by free
    /// MABs.
    fn drain_prefetches(&mut self, now: u64) {
        let free = self.mabs.capacity().saturating_sub(self.mabs.occupancy(now));
        if free == 0 {
            return;
        }
        // Reserve one buffer for demands.
        let budget = free.saturating_sub(1);
        if budget == 0 {
            return;
        }
        let mut lines = std::mem::take(&mut self.scratch_lines);
        self.twopass.drain_ready_into(now, budget, &mut lines);
        for &line in &lines {
            let addr = line * 64;
            self.mabs.try_allocate(now, now + self.l1_hit_lat as u64 + 4);
            self.fill_l1(addr, now);
        }
        self.scratch_lines = lines;
    }

    // ------------------------------------------------------------------
    // Demand interface
    // ------------------------------------------------------------------

    /// Occupancy must never exceed capacity: `try_allocate` refuses when
    /// full, so a violation means the buffer bookkeeping itself broke.
    fn check_mab_invariant(&self, now: u64) -> Result<(), SimError> {
        let occ = self.mabs.occupancy(now);
        let cap = self.mabs.capacity();
        if occ > cap {
            return Err(SimError::ResourceInvariant {
                resource: "mab",
                detail: format!("{occ} miss buffers in flight but only {cap} exist"),
            });
        }
        Ok(())
    }

    /// Miss-address buffers in use at `now` (watchdog snapshots).
    pub fn mab_occupancy(&self, now: u64) -> usize {
        self.mabs.occupancy(now)
    }

    /// Configured miss-address buffer count.
    pub fn mab_capacity(&self) -> usize {
        self.mabs.capacity()
    }

    /// MAB occupancy statistics.
    pub fn mab_stats(&self) -> exynos_mem::mshr::MshrStats {
        self.mabs.stats()
    }

    /// TLB hierarchy access (per-level stats).
    pub fn tlb(&self) -> &exynos_mem::tlb::TlbHierarchy {
        &self.tlb
    }

    /// Fault-injection hook: the prefetch confirmation paths lose their
    /// in-flight state — pending two-pass fills are discarded and the
    /// standalone prefetcher's stream training resets. Returns the number
    /// of pending L1 fills that were dropped.
    pub fn drop_prefetch_state(&mut self) -> usize {
        let dropped = self.twopass.drop_pending();
        if let Some(sp) = &mut self.standalone {
            sp.drop_confirmations();
        }
        dropped
    }

    /// A demand load issued at `now`; returns the cycle its data is
    /// available. `cascade` selects the load-to-load fast path (M4+).
    pub fn load(&mut self, pc: u64, vaddr: u64, now: u64, cascade: bool) -> Result<u64, SimError> {
        self.stats.loads += 1;
        self.drain_prefetches(now);
        let tlb_lat = self.tlb.translate_data(vaddr) as u64;
        let base = now + tlb_lat;
        let hit_lat = if cascade { self.l1_cascade_lat } else { self.l1_hit_lat } as u64;
        let l1_meta = self.l1d.meta(vaddr);
        if self.l1d.access(vaddr, AccessKind::Demand) {
            self.stats.l1_hits += 1;
            // First demand touch of a prefetched L1 line: propagate the
            // reuse information down to the L2 (response-channel metadata,
            // §VIII.A) and keep training/confirming the L1 prefetcher —
            // the prefetch-hit bit feeds the training unit, otherwise a
            // covered stream would starve its own prefetcher.
            if let Some(m) = l1_meta {
                if m.prefetched && !m.demand_hit {
                    self.l2.mark_demanded(vaddr);
                    let mut reqs = std::mem::take(&mut self.scratch_reqs);
                    self.l1pf.on_demand_miss_into(pc, vaddr, &mut reqs);
                    self.issue_l1_prefetches(&reqs, now);
                    self.scratch_reqs = reqs;
                }
            }
            let done = base + hit_lat;
            self.stats.total_load_latency += done - now;
            return Ok(done);
        }
        // L1 miss: allocate a MAB (stall if none free).
        self.check_mab_invariant(now)?;
        let mut start = base;
        if !self.mabs.try_allocate(start, start + 1) {
            let free_at = self.mabs.earliest_free(start);
            self.stats.mab_stalls += 1;
            start = free_at;
        }
        // Train the L1 prefetchers on the miss and issue their requests.
        let mut requests = std::mem::take(&mut self.scratch_reqs);
        self.l1pf.on_demand_miss_into(pc, vaddr, &mut requests);
        let data_at_l2 = self.fetch_to_l2(pc, vaddr, start, AccessKind::Demand);
        // Reserve the MAB until the fill returns.
        let _ = self.mabs.try_allocate(start, data_at_l2);
        // Fill L1.
        let victims = self.l1d.fill(vaddr, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        for v in victims {
            if v.dirty {
                if self.l2.probe(v.addr) {
                    self.l2.mark_dirty(v.addr);
                } else {
                    let vict = self.l2.fill(v.addr, AccessKind::Writeback, v.meta, InsertPriority::Ordinary);
                    self.l2.mark_dirty(v.addr);
                    self.castout_l2_victims(vict);
                }
            }
        }
        // Issue the prefetch requests (two-pass scheme + TLB preload).
        self.issue_l1_prefetches(&requests, start);
        self.scratch_reqs = requests;
        let done = data_at_l2 + hit_lat;
        self.stats.total_load_latency += done - now;
        Ok(done)
    }

    /// A demand store issued at `now`; returns the cycle it completes into
    /// the store buffer (cache state updated in the background).
    pub fn store(&mut self, pc: u64, vaddr: u64, now: u64) -> Result<u64, SimError> {
        self.stats.stores += 1;
        let _ = self.tlb.translate_data(vaddr);
        if self.l1d.access(vaddr, AccessKind::Demand) {
            self.l1d.mark_dirty(vaddr);
        } else {
            // Write-allocate in the background: train the prefetcher but
            // discard its requests, as before.
            let mut reqs = std::mem::take(&mut self.scratch_reqs);
            self.l1pf.on_demand_miss_into(pc, vaddr, &mut reqs);
            self.scratch_reqs = reqs;
            let _ = self.fetch_to_l2(pc, vaddr, now, AccessKind::Demand);
            let victims = self.l1d.fill(vaddr, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
            self.l1d.mark_dirty(vaddr);
            for v in victims {
                if v.dirty && !self.l2.probe(v.addr) {
                    let vict = self.l2.fill(v.addr, AccessKind::Writeback, v.meta, InsertPriority::Ordinary);
                    self.castout_l2_victims(vict);
                }
            }
        }
        Ok(now + 1)
    }

    /// An instruction fetch of the line at `pc` at `now`; returns added
    /// fetch latency in cycles (0 on an L1I hit).
    pub fn ifetch(&mut self, pc: u64, now: u64) -> Result<u64, SimError> {
        let tlb_lat = self.tlb.translate_inst(pc) as u64;
        if self.l1i.access(pc, AccessKind::Demand) {
            return Ok(tlb_lat);
        }
        self.check_mab_invariant(now)?;
        self.stats.icache_misses += 1;
        let done = self.fetch_to_l2(pc, pc, now + tlb_lat, AccessKind::Demand);
        let _ = self.l1i.fill(pc, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        // Clean instruction lines need no writeback.
        Ok(done.saturating_sub(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    fn ms(cfg: CoreConfig) -> MemSystem {
        MemSystem::new(&cfg)
    }

    #[test]
    fn l1_hit_costs_hit_latency() {
        let mut m = ms(CoreConfig::m3());
        let t1 = m.load(0x4000, 0x10_0000, 0, false).unwrap();
        assert!(t1 > 50, "cold miss goes deep");
        let t2 = m.load(0x4000, 0x10_0008, 1000, false).unwrap();
        assert_eq!(t2 - 1000, 4, "same line now hits L1");
        assert_eq!(m.stats().l1_hits, 1);
    }

    #[test]
    fn cascade_latency_is_three() {
        let mut m = ms(CoreConfig::m4());
        let _ = m.load(0x4000, 0x10_0000, 0, false).unwrap();
        let t = m.load(0x4000, 0x10_0000, 1000, true).unwrap();
        assert_eq!(t - 1000, 3);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let mut m = ms(CoreConfig::m3());
        let cold = m.load(0x4000, 0x20_0000, 0, false).unwrap() - 0;
        // Evict from L1 by filling the set, keeping L2 resident: simplest
        // is a second distinct line mapping elsewhere, then re-access the
        // first after L1 eviction. Directly probe the path instead: a
        // second load to the same line after only L1 invalidation isn't
        // exposed, so approximate by comparing a fresh DRAM load to an
        // L3-resident reload pattern at the system level.
        assert!(cold > m.l2_stats().demand_misses as u64); // sanity
        let far = m.load(0x4000, 0x30_0000, 10_000, false).unwrap() - 10_000;
        assert!(far > 60, "cold DRAM load is expensive, got {far}");
    }

    #[test]
    fn exclusive_l3_receives_l2_castouts_and_swaps_back() {
        let mut m = ms(CoreConfig::m3());
        // Touch far more lines than the 512 KB L2 holds so castouts reach
        // the L3; revisit early lines: they must come back cheaper than
        // DRAM.
        let lines = (512 * 1024 / 64) * 2;
        for i in 0..lines as u64 {
            // Touch twice so reuse metadata marks them L3-worthy.
            let a = 0x100_0000 + i * 64;
            let _ = m.load(0x4000, a, i * 10, false).unwrap();
            let _ = m.load(0x4000, a, i * 10 + 5, false).unwrap();
        }
        let before = m.stats().l3_hits;
        // Revisit a mid-range line (old enough to have left L1/L2).
        let _ = m.load(0x4000, 0x100_0000, 10_000_000, false).unwrap();
        assert!(
            m.stats().l3_hits > before,
            "revisit must be served by the exclusive L3: {:?}",
            m.stats()
        );
    }

    #[test]
    fn strided_stream_gets_prefetched() {
        let mut m = ms(CoreConfig::m3());
        let mut misses_late = 0;
        let mut total_late = 0;
        for i in 0..400u64 {
            let t = m.load(0x4000, 0x400_0000 + i * 64, i * 200, false).unwrap();
            let lat = t - i * 200;
            if i >= 350 {
                total_late += 1;
                if lat > 8 {
                    misses_late += 1;
                }
            }
        }
        assert!(
            misses_late < total_late / 2,
            "steady strided stream should mostly hit after prefetch training: {misses_late}/{total_late}"
        );
        assert!(m.stats().l1_prefetch_fills > 0);
    }

    #[test]
    fn buddy_fills_on_m4_but_not_m3() {
        let run = |cfg: CoreConfig| {
            let mut m = ms(cfg);
            for i in 0..50u64 {
                // Pointer-chase-ish: unique 128 B-granule pairs.
                let _ = m.load(0x4000, 0x800_0000 + i * 8192, i * 300, false).unwrap();
            }
            m.stats().buddy_fills
        };
        assert_eq!(run(CoreConfig::m3()), 0);
        assert!(run(CoreConfig::m4()) > 0);
    }

    #[test]
    fn mab_limit_stalls_when_exhausted() {
        let mut m = ms(CoreConfig::m1()); // 8 MABs
        // Fire many independent misses at the same cycle.
        for i in 0..30u64 {
            let _ = m.load(0x4000, 0x900_0000 + i * 4096 * 7, 0, false).unwrap();
        }
        assert!(m.stats().mab_stalls > 0, "{:?}", m.stats());
    }

    #[test]
    fn ifetch_miss_then_hit() {
        let mut m = ms(CoreConfig::m3());
        let lat = m.ifetch(0x40_0000, 0).unwrap();
        assert!(lat > 0);
        let lat2 = m.ifetch(0x40_0010, 100).unwrap();
        assert_eq!(lat2, 0, "same icache line hits");
    }

    #[test]
    fn stores_complete_fast_but_update_state() {
        let mut m = ms(CoreConfig::m3());
        let t = m.store(0x4000, 0xA0_0000, 0).unwrap();
        assert_eq!(t, 1);
        // The stored line is now L1-resident: a load hits.
        let t2 = m.load(0x4000, 0xA0_0000, 100, false).unwrap();
        assert_eq!(t2 - 100, 4);
    }

    #[test]
    fn spec_read_enabled_only_on_m5() {
        let mut m5 = ms(CoreConfig::m5());
        let mut m4 = ms(CoreConfig::m4());
        // Pointer-chase pattern that always misses: trains the miss
        // predictor, then speculates.
        for i in 0..200u64 {
            let a = 0xB00_0000 + i * 64 * 97;
            let _ = m5.load(0x4444, a, i * 400, false).unwrap();
            let _ = m4.load(0x4444, a, i * 400, false).unwrap();
        }
        assert!(m5.stats().spec_read_wins > 0);
        assert_eq!(m4.stats().spec_read_wins, 0);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn save_opt<T: Snapshot>(enc: &mut Encoder, v: &Option<T>) {
        match v {
            Some(x) => {
                enc.u8(1);
                x.save(enc);
            }
            None => enc.u8(0),
        }
    }

    fn load_opt<T: Snapshot>(
        dec: &mut Decoder<'_>,
        v: &mut Option<T>,
        what: &'static str,
    ) -> Result<(), SnapshotError> {
        let present = match dec.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt { what }),
        };
        match (v, present) {
            (Some(x), true) => x.restore(dec),
            (None, false) => Ok(()),
            (mine, _) => Err(SnapshotError::Geometry {
                what,
                expected: u64::from(mine.is_some()),
                found: u64::from(present),
            }),
        }
    }

    impl Snapshot for MemSystem {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::MEMSYS);
            self.l1i.save(enc);
            self.l1d.save(enc);
            self.l2.save(enc);
            save_opt(enc, &self.l3);
            self.tlb.save(enc);
            self.mabs.save(enc);
            self.l1pf.save(enc);
            self.twopass.save(enc);
            save_opt(enc, &self.buddy);
            enc.seq(self.buddy_lines.len());
            for l in &self.buddy_lines {
                enc.u64(*l);
            }
            save_opt(enc, &self.standalone);
            self.spec.save(enc);
            self.snoop.save(enc);
            self.dram.save(enc);
            enc.u64(self.stats.loads);
            enc.u64(self.stats.stores);
            enc.u64(self.stats.l1_hits);
            enc.u64(self.stats.l2_hits);
            enc.u64(self.stats.l3_hits);
            enc.u64(self.stats.dram_loads);
            enc.u64(self.stats.total_load_latency);
            enc.u64(self.stats.mab_stalls);
            enc.u64(self.stats.l1_prefetch_fills);
            enc.u64(self.stats.buddy_fills);
            enc.u64(self.stats.standalone_fills);
            enc.u64(self.stats.spec_read_wins);
            enc.u64(self.stats.icache_misses);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::MEMSYS)?;
            self.l1i.restore(dec)?;
            self.l1d.restore(dec)?;
            self.l2.restore(dec)?;
            load_opt(dec, &mut self.l3, "l3 presence")?;
            self.tlb.restore(dec)?;
            self.mabs.restore(dec)?;
            self.l1pf.restore(dec)?;
            self.twopass.restore(dec)?;
            load_opt(dec, &mut self.buddy, "buddy presence")?;
            let nb = dec.seq(8)?;
            if nb > 64 {
                return Err(SnapshotError::Geometry {
                    what: "buddy usefulness window",
                    expected: 64,
                    found: nb as u64,
                });
            }
            self.buddy_lines.clear();
            for _ in 0..nb {
                self.buddy_lines.push_back(dec.u64()?);
            }
            load_opt(dec, &mut self.standalone, "standalone presence")?;
            self.spec.restore(dec)?;
            self.snoop.restore(dec)?;
            self.dram.restore(dec)?;
            self.stats.loads = dec.u64()?;
            self.stats.stores = dec.u64()?;
            self.stats.l1_hits = dec.u64()?;
            self.stats.l2_hits = dec.u64()?;
            self.stats.l3_hits = dec.u64()?;
            self.stats.dram_loads = dec.u64()?;
            self.stats.total_load_latency = dec.u64()?;
            self.stats.mab_stalls = dec.u64()?;
            self.stats.l1_prefetch_fills = dec.u64()?;
            self.stats.buddy_fills = dec.u64()?;
            self.stats.standalone_fills = dec.u64()?;
            self.stats.spec_read_wins = dec.u64()?;
            self.stats.icache_misses = dec.u64()?;
            // The scratch buffers are transient step-loop storage: always
            // empty between steps, so a resumed run starts them empty too.
            self.scratch_lines.clear();
            self.scratch_reqs.clear();
            dec.end_section()
        }
    }
}
