//! Shared decoded-trace chunks for batched lockstep sweeps.
//!
//! Population sweeps run the *same* trace slice against many
//! configurations (the paper's §II design-space methodology). The trace
//! generators are pure functions of `(SliceSpec, seed)`, so every member
//! of such a group consumes an identical instruction stream — yet the
//! serial per-member loop regenerates it once per member. An
//! [`InstChunk`] decodes a block of records once and lets N simulators
//! step over the shared slice ([`Simulator::run_block`]), amortizing
//! generation cost across the whole group.
//!
//! Chunked lockstep preserves bit-identity by construction: simulators
//! share no mutable state, and each member sees the exact record
//! sequence it would have seen stepping its own generator. The chunk is
//! a reusable buffer — one allocation per group, refilled in place.
//!
//! [`Simulator::run_block`]: crate::sim::Simulator::run_block

use exynos_trace::suite::SliceSpec;
use exynos_trace::{Fingerprint, Inst, TraceError, TraceGen};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Records decoded per [`InstChunk::refill`] call. The dominant cost of
/// small chunks is not the bookkeeping but the *member switch*: each
/// simulator's hot predictor state (SHP weights, BTB/µBTB tag+target
/// arrays, cache tags) is evicted by the other members' tables between
/// its turns, so members must step long contiguous runs to keep
/// scalar-like locality. 8 Ki records gives each member thousands of
/// contiguous steps per switch (a typical warmup or detail window is a
/// handful of chunks) while the buffer itself stays well under a MiB,
/// so it remains cache-resident across the member loop.
pub const CHUNK_LEN: usize = 8 * 1024;

/// A reusable buffer of decoded trace records shared by every member of
/// a lockstep batch.
#[derive(Debug, Default)]
pub struct InstChunk {
    buf: Vec<Inst>,
}

impl InstChunk {
    /// An empty chunk with capacity for [`CHUNK_LEN`] records.
    pub fn new() -> InstChunk {
        InstChunk { buf: Vec::with_capacity(CHUNK_LEN) }
    }

    /// Discard the current contents and decode up to `n` records from
    /// `gen`. Returns the freshly decoded block.
    pub fn refill(&mut self, gen: &mut dyn TraceGen, n: usize) -> &[Inst] {
        self.buf.clear();
        self.buf.reserve(n);
        for _ in 0..n {
            self.buf.push(gen.next_inst());
        }
        &self.buf
    }

    /// The decoded records currently in the buffer.
    pub fn as_slice(&self) -> &[Inst] {
        &self.buf
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// One cached chunk's identity: which stream it came from and where in
/// that stream it sits. Chunks are always materialized on canonical
/// [`CHUNK_LEN`]-aligned boundaries (chunk `i` covers records
/// `[i*CHUNK_LEN, (i+1)*CHUNK_LEN)`), so any consumer cursor — warmup
/// offsets included — maps onto the same cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ChunkKey {
    stream: u128,
    index: u64,
}

/// Bytes one fully decoded chunk occupies (the eviction unit).
const CHUNK_BYTES: usize = CHUNK_LEN * std::mem::size_of::<Inst>();

/// How many evicted buffers the free list retains for reuse. Small on
/// purpose: it only needs to cover the steady-state churn of one
/// producer per stream, not the whole cache.
const FREE_LIST_CAP: usize = 8;

/// Upper bound on buffered pipeline-stall samples between drains.
const STALL_SAMPLE_CAP: usize = 4096;

struct CacheEntry {
    data: Arc<Vec<Inst>>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<ChunkKey, CacheEntry>,
    /// Decoded bytes currently resident (gauge behind `stats().bytes`).
    bytes: u64,
    /// Monotone LRU clock, bumped on every hit/insert.
    tick: u64,
    /// Recycled chunk buffers (the free-list pool): evicted chunks whose
    /// last `Arc` lived in the cache donate their allocation back here,
    /// so steady-state materialization is allocation-free.
    free: Vec<Vec<Inst>>,
}

/// A bounded, ref-counted cache of decoded trace chunks, shared across
/// generation groups, sweep jobs and service jobs.
///
/// Keys are [`Fingerprint`] stream digests plus a canonical chunk index;
/// values are `Arc<Vec<Inst>>` handed out to any consumer replaying the
/// same stream. Eviction is LRU under a byte `budget`:
///
/// * `None` — unbounded (the default for one-shot sweeps);
/// * `Some(0)` — store nothing: every lookup misses, materialized chunks
///   go straight to the caller and are dropped after use. The cache is
///   then a pure pass-through, which is what the bit-identity suite uses
///   to prove caching is invisible to results;
/// * `Some(n)` — evict least-recently-used whole chunks until resident
///   bytes fit `n` (an in-flight chunk's memory is freed only when its
///   consumers drop their `Arc`s, but it stops being findable).
///
/// All methods take `&self`; the cache is `Sync` and meant to be shared
/// behind an [`Arc`].
pub struct ChunkCache {
    inner: Mutex<CacheInner>,
    budget: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stalls: Mutex<Vec<u64>>,
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ChunkCache")
            .field("budget", &self.budget)
            .field("stats", &s)
            .finish()
    }
}

/// Point-in-time counters for one [`ChunkCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    /// Lookups served from a resident chunk.
    pub hits: u64,
    /// Lookups that had to materialize (including budget-0 pass-through).
    pub misses: u64,
    /// Whole chunks evicted under the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub bytes: u64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl ChunkCache {
    /// An unbounded cache.
    pub fn unbounded() -> ChunkCache {
        ChunkCache::with_budget(None)
    }

    /// A cache holding at most `budget` decoded bytes (`None` =
    /// unbounded, `Some(0)` = pass-through; see the type docs).
    pub fn with_budget(budget: Option<u64>) -> ChunkCache {
        ChunkCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                free: Vec::new(),
            }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stalls: Mutex::new(Vec::new()),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Current counters.
    pub fn stats(&self) -> ChunkCacheStats {
        ChunkCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: lock_unpoisoned(&self.inner).bytes,
        }
    }

    /// Record one pipeline stall (consumer blocked waiting on a producer)
    /// in microseconds. Samples are buffered (bounded) until drained by
    /// [`ChunkCache::take_stalls`].
    pub fn record_stall(&self, dur_us: u64) {
        let mut stalls = lock_unpoisoned(&self.stalls);
        if stalls.len() < STALL_SAMPLE_CAP {
            stalls.push(dur_us);
        }
    }

    /// Drain the buffered stall samples (for histogram export).
    pub fn take_stalls(&self) -> Vec<u64> {
        std::mem::take(&mut *lock_unpoisoned(&self.stalls))
    }

    fn lookup(&self, key: ChunkKey) -> Option<Arc<Vec<Inst>>> {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(&key) {
            e.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&e.data));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Pop a recycled buffer for the producer to fill (or a fresh one).
    fn checkout_buffer(&self) -> Vec<Inst> {
        lock_unpoisoned(&self.inner)
            .free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(CHUNK_LEN))
    }

    /// Insert a freshly materialized chunk, evicting LRU entries to fit
    /// the budget. With budget 0 nothing is stored (the caller keeps the
    /// only `Arc`). Races between two producers of the same key are
    /// benign: both materialized byte-identical data, last insert wins.
    fn insert(&self, key: ChunkKey, data: &Arc<Vec<Inst>>) {
        if self.budget == Some(0) {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let old = inner.map.insert(
            key,
            CacheEntry { data: Arc::clone(data), last_used: tick },
        );
        if old.is_none() {
            inner.bytes += CHUNK_BYTES as u64;
        }
        if let Some(budget) = self.budget {
            while inner.bytes > budget && !inner.map.is_empty() {
                let lru = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k);
                let Some(lru) = lru else { break };
                if let Some(e) = inner.map.remove(&lru) {
                    inner.bytes -= CHUNK_BYTES as u64;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    // Recycle the allocation if the cache held the last
                    // reference (the free-list pool).
                    if let Ok(mut buf) = Arc::try_unwrap(e.data) {
                        if inner.free.len() < FREE_LIST_CAP {
                            buf.clear();
                            inner.free.push(buf);
                        }
                    }
                }
            }
        }
    }
}

/// A record-level cursor over one fingerprinted stream, backed by a
/// shared [`ChunkCache`].
///
/// The stream hands out whole decoded chunks plus the sub-range the
/// cursor covers, so consumers with arbitrary (non-chunk-aligned)
/// warmup/detail windows still map onto canonical cache entries. On a
/// hit the private generator is *not* advanced — it lazily fast-forwards
/// (or rebuilds from scratch if the cursor ever regressed past it) only
/// when a miss forces materialization. Correctness never depends on the
/// cache: every path re-derives the same records from the same pure
/// generator.
pub struct CachedStream {
    cache: Arc<ChunkCache>,
    stream: Fingerprint,
    build: Box<dyn Fn() -> Result<Box<dyn TraceGen + Send>, TraceError> + Send + Sync>,
    gen: Option<Box<dyn TraceGen + Send>>,
    /// Absolute record position of `gen` (records already drawn from it).
    gen_pos: u64,
    /// Absolute record position of the consumer cursor.
    pos: u64,
}

impl std::fmt::Debug for CachedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedStream")
            .field("stream", &self.stream)
            .field("pos", &self.pos)
            .field("gen_pos", &self.gen_pos)
            .finish()
    }
}

impl CachedStream {
    /// A stream over `build()`'s output, identified by `stream`.
    ///
    /// The caller asserts that `build` is pure and that `stream` is a
    /// faithful content digest (two streams with equal fingerprints must
    /// emit byte-identical records) — [`SliceSpec::stream_fingerprint`]
    /// and the [`exynos_trace::TraceSource`] contract provide exactly
    /// that.
    pub fn new<F>(cache: Arc<ChunkCache>, stream: Fingerprint, build: F) -> CachedStream
    where
        F: Fn() -> Result<Box<dyn TraceGen + Send>, TraceError> + Send + Sync + 'static,
    {
        CachedStream {
            cache,
            stream,
            build: Box::new(build),
            gen: None,
            gen_pos: 0,
            pos: 0,
        }
    }

    /// A stream over a catalog slice (the common case).
    pub fn for_slice(cache: Arc<ChunkCache>, slice: &SliceSpec) -> CachedStream {
        let fp = slice.stream_fingerprint();
        let spec = slice.clone();
        CachedStream::new(cache, fp, move || spec.build())
    }

    /// The stream's content digest.
    pub fn fingerprint(&self) -> Fingerprint {
        self.stream
    }

    /// The shared cache this stream reads through.
    pub fn cache(&self) -> &Arc<ChunkCache> {
        &self.cache
    }

    /// Absolute record position of the cursor.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Advance the cursor by `n` records without producing them. Free on
    /// cached regions: the skipped records are only ever generated if a
    /// later miss needs the generator fast-forwarded through them.
    pub fn skip(&mut self, n: u64) {
        self.pos += n;
    }

    /// Materialize the canonical chunk containing absolute record
    /// `start..start+CHUNK_LEN`, reusing pooled buffers.
    fn materialize(&mut self, chunk_index: u64) -> Result<Arc<Vec<Inst>>, TraceError> {
        let start = chunk_index * CHUNK_LEN as u64;
        // The generator can only move forward; a cursor that regressed
        // (or a fresh stream) rebuilds it from the pure source.
        if self.gen.is_none() || self.gen_pos > start {
            self.gen = Some((self.build)()?);
            self.gen_pos = 0;
        }
        // `materialize` is only called with `gen` freshly assigned above
        // or already present; the `else` arm is unreachable but kept
        // typed rather than unwrapped.
        let Some(gen) = self.gen.as_mut() else {
            return Err(TraceError::program("cached-stream", "generator unavailable"));
        };
        for _ in self.gen_pos..start {
            let _ = gen.next_inst();
        }
        let mut buf = self.cache.checkout_buffer();
        buf.clear();
        buf.reserve(CHUNK_LEN);
        for _ in 0..CHUNK_LEN {
            buf.push(gen.next_inst());
        }
        self.gen_pos = start + CHUNK_LEN as u64;
        Ok(Arc::new(buf))
    }

    /// Produce the next run of records: the resident (or freshly
    /// materialized) chunk under the cursor plus the in-chunk range
    /// covering at most `max` records. The range never crosses a chunk
    /// boundary, so a consumer loop naturally re-enters per chunk.
    /// Streams are infinite; this always yields a non-empty range for
    /// `max > 0`.
    pub fn next_block(&mut self, max: usize) -> Result<(Arc<Vec<Inst>>, Range<usize>), TraceError> {
        let chunk_index = self.pos / CHUNK_LEN as u64;
        let offset = (self.pos % CHUNK_LEN as u64) as usize;
        let len = max.min(CHUNK_LEN - offset);
        let key = ChunkKey { stream: self.stream.0, index: chunk_index };
        let data = match self.cache.lookup(key) {
            Some(d) => d,
            None => {
                let d = self.materialize(chunk_index)?;
                self.cache.insert(key, &d);
                d
            }
        };
        self.pos += len as u64;
        Ok((data, offset..offset + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exynos_trace::gen::loops::{LoopNest, LoopNestParams};

    #[test]
    fn refill_matches_direct_generation() {
        let params = LoopNestParams::default();
        let mut a = LoopNest::new(&params, 0, 7);
        let mut b = LoopNest::new(&params, 0, 7);
        let mut chunk = InstChunk::new();
        let block = chunk.refill(&mut a, 100);
        assert_eq!(block.len(), 100);
        for inst in block {
            assert_eq!(inst.pc, b.next_inst().pc);
        }
        // Refilling reuses the buffer and replaces the contents.
        let block = chunk.refill(&mut a, 5);
        assert_eq!(block.len(), 5);
        assert_eq!(block[0].pc, b.next_inst().pc);
    }

    fn loop_stream(cache: &Arc<ChunkCache>, seed: u64) -> CachedStream {
        let params = LoopNestParams::default();
        CachedStream::new(
            Arc::clone(cache),
            Fingerprint(0x1234 + seed as u128),
            move || Ok(Box::new(LoopNest::new(&params, 0, seed))),
        )
    }

    /// Drain `n` records through arbitrary block sizes and collect PCs.
    fn drain(stream: &mut CachedStream, n: usize, block: usize) -> Vec<u64> {
        let mut pcs = Vec::with_capacity(n);
        while pcs.len() < n {
            let (chunk, range) = stream.next_block(block.min(n - pcs.len())).unwrap();
            pcs.extend(chunk[range].iter().map(|i| i.pc));
        }
        pcs
    }

    #[test]
    fn cached_stream_matches_direct_generation() {
        let cache = Arc::new(ChunkCache::unbounded());
        let mut direct = LoopNest::new(&LoopNestParams::default(), 0, 7);
        let want: Vec<u64> = (0..20_000).map(|_| direct.next_inst().pc).collect();
        let mut s = loop_stream(&cache, 7);
        assert_eq!(drain(&mut s, 20_000, 777), want);
        // A second pass over the same stream hits the cache and still
        // yields identical records.
        let before = cache.stats();
        assert!(before.hits >= 1, "second chunk of pass 1 re-reads chunk 0? {before:?}");
        let mut s2 = loop_stream(&cache, 7);
        assert_eq!(drain(&mut s2, 20_000, 4_096), want);
        let after = cache.stats();
        assert_eq!(after.misses, before.misses, "pass 2 must be all hits");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn budget_zero_is_pure_pass_through() {
        let cache = Arc::new(ChunkCache::with_budget(Some(0)));
        let mut direct = LoopNest::new(&LoopNestParams::default(), 0, 9);
        let want: Vec<u64> = (0..20_000).map(|_| direct.next_inst().pc).collect();
        let mut s = loop_stream(&cache, 9);
        assert_eq!(drain(&mut s, 20_000, 1_000), want);
        let st = cache.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.bytes, 0);
        assert!(st.misses >= 3);
    }

    #[test]
    fn tiny_budget_evicts_but_stays_correct() {
        // One chunk's worth of budget: the second resident chunk evicts
        // the first, every pass regenerates, results stay identical.
        let cache = Arc::new(ChunkCache::with_budget(Some(CHUNK_BYTES as u64)));
        let mut direct = LoopNest::new(&LoopNestParams::default(), 0, 11);
        let want: Vec<u64> = (0..3 * CHUNK_LEN).map(|_| direct.next_inst().pc).collect();
        let mut s = loop_stream(&cache, 11);
        assert_eq!(drain(&mut s, 3 * CHUNK_LEN, 500), want);
        let st = cache.stats();
        assert!(st.evictions >= 2, "expected evictions under a 1-chunk budget: {st:?}");
        assert!(st.bytes <= CHUNK_BYTES as u64);
        let mut s2 = loop_stream(&cache, 11);
        assert_eq!(drain(&mut s2, 3 * CHUNK_LEN, 8_192), want);
    }

    #[test]
    fn skip_is_cursor_only_and_alignment_is_canonical() {
        let cache = Arc::new(ChunkCache::unbounded());
        // Warm chunks 0..3 via one consumer.
        let mut warm = loop_stream(&cache, 13);
        let all = drain(&mut warm, 3 * CHUNK_LEN, CHUNK_LEN);
        let misses = cache.stats().misses;
        // A second consumer skipping a non-aligned warmup still lands on
        // the same canonical chunks: zero new misses.
        let mut s = loop_stream(&cache, 13);
        s.skip(10_000);
        let tail = drain(&mut s, 3 * CHUNK_LEN - 10_000, 321);
        assert_eq!(tail, all[10_000..]);
        assert_eq!(cache.stats().misses, misses, "skip must not bypass canonical alignment");
    }

    #[test]
    fn distinct_fingerprints_do_not_share_chunks() {
        let cache = Arc::new(ChunkCache::unbounded());
        let mut a = loop_stream(&cache, 1);
        let mut b = loop_stream(&cache, 2);
        let _ = a.next_block(64).unwrap();
        let hits_before = cache.stats().hits;
        let _ = b.next_block(64).unwrap();
        assert_eq!(cache.stats().hits, hits_before, "different streams must miss");
    }

    #[test]
    fn stall_samples_drain_once() {
        let cache = ChunkCache::unbounded();
        cache.record_stall(42);
        cache.record_stall(7);
        assert_eq!(cache.take_stalls(), vec![42, 7]);
        assert!(cache.take_stalls().is_empty());
    }
}
