//! Shared decoded-trace chunks for batched lockstep sweeps.
//!
//! Population sweeps run the *same* trace slice against many
//! configurations (the paper's §II design-space methodology). The trace
//! generators are pure functions of `(SliceSpec, seed)`, so every member
//! of such a group consumes an identical instruction stream — yet the
//! serial per-member loop regenerates it once per member. An
//! [`InstChunk`] decodes a block of records once and lets N simulators
//! step over the shared slice ([`Simulator::run_block`]), amortizing
//! generation cost across the whole group.
//!
//! Chunked lockstep preserves bit-identity by construction: simulators
//! share no mutable state, and each member sees the exact record
//! sequence it would have seen stepping its own generator. The chunk is
//! a reusable buffer — one allocation per group, refilled in place.
//!
//! [`Simulator::run_block`]: crate::sim::Simulator::run_block

use exynos_trace::{Inst, TraceGen};

/// Records decoded per [`InstChunk::refill`] call. The dominant cost of
/// small chunks is not the bookkeeping but the *member switch*: each
/// simulator's hot predictor state (SHP weights, BTB/µBTB tag+target
/// arrays, cache tags) is evicted by the other members' tables between
/// its turns, so members must step long contiguous runs to keep
/// scalar-like locality. 8 Ki records gives each member thousands of
/// contiguous steps per switch (a typical warmup or detail window is a
/// handful of chunks) while the buffer itself stays well under a MiB,
/// so it remains cache-resident across the member loop.
pub const CHUNK_LEN: usize = 8 * 1024;

/// A reusable buffer of decoded trace records shared by every member of
/// a lockstep batch.
#[derive(Debug, Default)]
pub struct InstChunk {
    buf: Vec<Inst>,
}

impl InstChunk {
    /// An empty chunk with capacity for [`CHUNK_LEN`] records.
    pub fn new() -> InstChunk {
        InstChunk { buf: Vec::with_capacity(CHUNK_LEN) }
    }

    /// Discard the current contents and decode up to `n` records from
    /// `gen`. Returns the freshly decoded block.
    pub fn refill(&mut self, gen: &mut dyn TraceGen, n: usize) -> &[Inst] {
        self.buf.clear();
        self.buf.reserve(n);
        for _ in 0..n {
            self.buf.push(gen.next_inst());
        }
        &self.buf
    }

    /// The decoded records currently in the buffer.
    pub fn as_slice(&self) -> &[Inst] {
        &self.buf
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exynos_trace::gen::loops::{LoopNest, LoopNestParams};

    #[test]
    fn refill_matches_direct_generation() {
        let params = LoopNestParams::default();
        let mut a = LoopNest::new(&params, 0, 7);
        let mut b = LoopNest::new(&params, 0, 7);
        let mut chunk = InstChunk::new();
        let block = chunk.refill(&mut a, 100);
        assert_eq!(block.len(), 100);
        for inst in block {
            assert_eq!(inst.pc, b.next_inst().pc);
        }
        // Refilling reuses the buffer and replaces the contents.
        let block = chunk.refill(&mut a, 5);
        assert_eq!(block.len(), 5);
        assert_eq!(block[0].pc, b.next_inst().pc);
    }
}
