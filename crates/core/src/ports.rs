//! Issue-port scheduling (Table I's execution-unit complement).
//!
//! Each cycle offers a fixed number of issue slots per resource class; an
//! instruction books the earliest cycle (at or after its ready time) with
//! a free eligible unit. The booking window is finite — contention older
//! than the window has no effect, which bounds memory without changing
//! steady-state behaviour.

use crate::config::Ports;

/// Resource classes an instruction can issue to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Simple integer ALU ("S").
    IntS,
    /// Complex ALU ("C": simple + mul + indirect branch).
    IntC,
    /// Complex + divide ALU ("CD").
    IntCd,
    /// Direct-branch unit ("BR").
    Br,
    /// Load pipe.
    Ld,
    /// Store pipe.
    St,
    /// Generic load-or-store pipe.
    Gen,
    /// FMAC-capable FP pipe.
    Fmac,
    /// FADD-only FP pipe.
    Fadd,
}

impl Resource {
    const COUNT: usize = 9;

    fn index(self) -> usize {
        match self {
            Resource::IntS => 0,
            Resource::IntC => 1,
            Resource::IntCd => 2,
            Resource::Br => 3,
            Resource::Ld => 4,
            Resource::St => 5,
            Resource::Gen => 6,
            Resource::Fmac => 7,
            Resource::Fadd => 8,
        }
    }
}

const WINDOW: usize = 512;

/// Per-cycle, per-resource slot booking.
#[derive(Debug, Clone)]
pub struct PortSchedule {
    caps: [u32; Resource::COUNT],
    /// used[cycle % WINDOW][resource], valid iff stamp matches.
    used: Vec<[u32; Resource::COUNT]>,
    stamps: Vec<u64>,
}

impl PortSchedule {
    /// Build a schedule from the generation's port complement.
    pub fn new(p: &Ports) -> PortSchedule {
        let mut caps = [0u32; Resource::COUNT];
        caps[Resource::IntS.index()] = p.s;
        caps[Resource::IntC.index()] = p.c;
        caps[Resource::IntCd.index()] = p.cd;
        caps[Resource::Br.index()] = p.br;
        caps[Resource::Ld.index()] = p.ld;
        caps[Resource::St.index()] = p.st;
        caps[Resource::Gen.index()] = p.gen;
        caps[Resource::Fmac.index()] = p.fmac;
        caps[Resource::Fadd.index()] = p.fadd;
        PortSchedule {
            caps,
            used: vec![[0; Resource::COUNT]; WINDOW],
            stamps: vec![u64::MAX; WINDOW],
        }
    }

    fn slot_free(&mut self, cycle: u64, r: Resource) -> bool {
        let i = (cycle % WINDOW as u64) as usize;
        if self.stamps[i] != cycle {
            self.stamps[i] = cycle;
            self.used[i] = [0; Resource::COUNT];
        }
        self.used[i][r.index()] < self.caps[r.index()]
    }

    fn take(&mut self, cycle: u64, r: Resource) {
        let i = (cycle % WINDOW as u64) as usize;
        self.used[i][r.index()] += 1;
    }

    /// Book one unit from `eligible` (tried in order) at the earliest
    /// cycle ≥ `earliest`; returns the issue cycle.
    pub fn book(&mut self, eligible: &[Resource], earliest: u64) -> u64 {
        for c in earliest..earliest + WINDOW as u64 {
            for &r in eligible {
                if self.caps[r.index()] == 0 {
                    continue;
                }
                if self.slot_free(c, r) {
                    self.take(c, r);
                    return c;
                }
            }
        }
        // Pathological contention beyond the window: issue anyway.
        earliest + WINDOW as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    fn sched() -> PortSchedule {
        PortSchedule::new(&CoreConfig::m1().ports)
    }

    #[test]
    fn same_cycle_until_ports_exhausted() {
        let mut s = sched(); // M1: 2 S ALUs
        assert_eq!(s.book(&[Resource::IntS], 10), 10);
        assert_eq!(s.book(&[Resource::IntS], 10), 10);
        assert_eq!(s.book(&[Resource::IntS], 10), 11);
    }

    #[test]
    fn eligibility_falls_through_port_list() {
        let mut s = sched(); // 2 S + 1 CD
        // Three ALU ops can issue in one cycle via S,S,CD.
        let eligible = [Resource::IntS, Resource::IntC, Resource::IntCd];
        assert_eq!(s.book(&eligible, 5), 5);
        assert_eq!(s.book(&eligible, 5), 5);
        assert_eq!(s.book(&eligible, 5), 5);
        assert_eq!(s.book(&eligible, 5), 6);
    }

    #[test]
    fn zero_cap_resources_skipped() {
        let mut s = sched(); // M1 has no C ALU and no generic pipe
        assert_eq!(s.book(&[Resource::IntC, Resource::IntCd], 0), 0);
        // Second divide-class op must wait (only 1 CD).
        assert_eq!(s.book(&[Resource::IntC, Resource::IntCd], 0), 1);
    }

    #[test]
    fn loads_bounded_by_load_pipes() {
        let mut s = PortSchedule::new(&CoreConfig::m3().ports); // 2 L pipes
        let e = [Resource::Ld, Resource::Gen];
        assert_eq!(s.book(&e, 0), 0);
        assert_eq!(s.book(&e, 0), 0);
        assert_eq!(s.book(&e, 0), 1);
        let mut s4 = PortSchedule::new(&CoreConfig::m4().ports); // 1 L + 1 G
        assert_eq!(s4.book(&e, 0), 0);
        assert_eq!(s4.book(&e, 0), 0);
        assert_eq!(s4.book(&e, 0), 1);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for PortSchedule {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::PORTS);
            enc.seq(self.used.len());
            for row in &self.used {
                for v in row {
                    enc.u32(*v);
                }
            }
            for s in &self.stamps {
                enc.u64(*s);
            }
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::PORTS)?;
            let n = dec.seq(Resource::COUNT * 4 + 8)?;
            if n != self.used.len() {
                return Err(SnapshotError::Geometry {
                    what: "port booking window",
                    expected: self.used.len() as u64,
                    found: n as u64,
                });
            }
            for row in &mut self.used {
                for v in row.iter_mut() {
                    *v = dec.u32()?;
                }
            }
            for s in &mut self.stamps {
                *s = dec.u64()?;
            }
            dec.end_section()
        }
    }
}
