//! [`Observable`] wiring for the core-level statistics producers.

use crate::fault::FaultStats;
use crate::memsys::MemStats;
use crate::sim::SimStats;
use exynos_telemetry::{Observable, Value};

impl Observable for SimStats {
    fn component(&self) -> &'static str {
        "core.sim"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("instructions", Value::U64(self.instructions));
        f("last_retire", Value::U64(self.last_retire));
        f("loads", Value::U64(self.loads));
        f("uoc_supplied", Value::U64(self.uoc_supplied));
        f("malformed_insts", Value::U64(self.malformed_insts));
        f("predictor_corruptions", Value::U64(self.predictor_corruptions));
        f("uoc_recoveries", Value::U64(self.uoc_recoveries));
        f("watchdog_events", Value::U64(self.watchdog_events));
        f("watchdog_recoveries", Value::U64(self.watchdog_recoveries));
        let cycles = self.last_retire.max(1);
        f("ipc", Value::F64(self.instructions as f64 / cycles as f64));
    }
}

impl Observable for MemStats {
    fn component(&self) -> &'static str {
        "core.mem"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("loads", Value::U64(self.loads));
        f("stores", Value::U64(self.stores));
        f("l1_hits", Value::U64(self.l1_hits));
        f("l2_hits", Value::U64(self.l2_hits));
        f("l3_hits", Value::U64(self.l3_hits));
        f("dram_loads", Value::U64(self.dram_loads));
        f("total_load_latency", Value::U64(self.total_load_latency));
        f("mab_stalls", Value::U64(self.mab_stalls));
        f("l1_prefetch_fills", Value::U64(self.l1_prefetch_fills));
        f("buddy_fills", Value::U64(self.buddy_fills));
        f("standalone_fills", Value::U64(self.standalone_fills));
        f("spec_read_wins", Value::U64(self.spec_read_wins));
        f("icache_misses", Value::U64(self.icache_misses));
        f("avg_load_latency", Value::F64(self.avg_load_latency()));
    }
}

impl Observable for FaultStats {
    fn component(&self) -> &'static str {
        "core.fault"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("btb_targets", Value::U64(self.btb_targets));
        f("btb_tags", Value::U64(self.btb_tags));
        f("shp_flips", Value::U64(self.shp_flips));
        f("ras_truncations", Value::U64(self.ras_truncations));
        f("prefetch_drops", Value::U64(self.prefetch_drops));
        f("malformed", Value::U64(self.malformed));
        f("gaps", Value::U64(self.gaps));
        f("stalls", Value::U64(self.stalls));
        f("total", Value::U64(self.total()));
    }
}
