//! Property tests on the composed simulator: physical sanity of the
//! timing model across arbitrary workloads and generations.

use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::sim::Simulator;
use exynos_trace::{standard_suite, SlicePlan, TraceGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IPC can never exceed the machine width, retirement is monotone,
    /// and the exclusive-hierarchy invariant holds at the end of any run.
    #[test]
    fn simulator_physical_sanity(slice_idx in 0usize..20, gen_idx in 0usize..6, seed in 0u64..50) {
        let suite = standard_suite(1);
        let slice = &suite[slice_idx % suite.len()];
        let cfg = CoreConfig::all_generations()[gen_idx].clone();
        let width = cfg.width;
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        let mut gen = slice.spec.build(slice.region, slice.seed ^ seed).unwrap();
        let mut last_rt = 0u64;
        let mut touched = Vec::new();
        for _ in 0..4_000 {
            let inst = gen.next_inst();
            if let Some(m) = inst.mem {
                if touched.len() < 64 {
                    touched.push(m.vaddr);
                }
            }
            let rt = sim.step(&inst).unwrap();
            prop_assert!(rt >= last_rt, "retirement must be monotone");
            last_rt = rt;
        }
        let s = sim.stats();
        let ipc = s.instructions as f64 / s.last_retire.max(1) as f64;
        prop_assert!(ipc <= width as f64 + 1e-9, "IPC {ipc} exceeds width {width}");
        // Exclusive hierarchy: no line resident in both L2 and L3.
        for addr in touched {
            let (_, l2, l3) = sim.memsys().line_residency(addr);
            prop_assert!(!(l2 && l3), "line {addr:#x} in both L2 and L3");
        }
    }

    /// Two simulators fed the same stream produce identical cycle counts
    /// (full determinism), for any slice and generation.
    #[test]
    fn simulator_determinism(slice_idx in 0usize..20, gen_idx in 0usize..6) {
        let suite = standard_suite(1);
        let slice = &suite[slice_idx % suite.len()];
        let cfg = CoreConfig::all_generations()[gen_idx].clone();
        let run = || {
            let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
            let mut gen = slice.build().unwrap();
            let r = sim.run_slice(&mut *gen, SlicePlan::new(500, 2_500)).unwrap();
            (r.cycles, r.mpki.to_bits())
        };
        prop_assert_eq!(run(), run());
    }
}
