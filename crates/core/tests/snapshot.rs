//! The checkpoint/resume hard invariant: resuming a checkpoint taken at
//! instruction N and running to M is bit-identical to a straight run to
//! M — for every generation, with and without fault injection. Verified
//! at the strongest level available: the final re-encoded checkpoint
//! images of the two simulators must be byte-equal, which covers every
//! predictor table, cache tag, prefetcher stream, and counter at once.

use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::error::SimError;
use exynos_core::fault::FaultPlan;
use exynos_core::sim::Simulator;
use exynos_trace::{standard_suite, SlicePlan, TraceGen};

/// Consume `n` instructions from `g` without simulating them (generator
/// fast-forward for the resumed half of the invariant).
fn fast_forward(g: &mut dyn TraceGen, n: u64) {
    for _ in 0..n {
        let _ = g.next_inst();
    }
}

/// Run the invariant for one configuration: warmup + checkpoint + detail
/// vs straight warmup + detail, comparing final checkpoint images.
fn assert_resume_invariant(cfg: CoreConfig, warmup: u64, detail: u64, fault: Option<FaultPlan>) {
    let slice = &standard_suite(1)[3];

    // Straight run to warmup + detail.
    let mut straight = SimBuilder::config(cfg.clone()).build().unwrap();
    if let Some(plan) = fault {
        straight.attach_fault_injector(plan);
    }
    let mut g = slice.build().unwrap();
    straight
        .run_slice(&mut *g, SlicePlan::new(warmup, detail))
        .unwrap();

    // Checkpoint at warmup, resume, run the detail window.
    let mut warm = SimBuilder::config(cfg.clone()).build().unwrap();
    if let Some(plan) = fault {
        warm.attach_fault_injector(plan);
    }
    let mut g = slice.build().unwrap();
    warm.run_warmup(&mut *g, warmup).unwrap();
    let image = warm.checkpoint();
    drop(warm);

    let mut resumed = Simulator::resume_with_config(cfg, &image).unwrap();
    let mut g = slice.build().unwrap();
    fast_forward(&mut *g, resumed.stats().instructions);
    resumed
        .run_slice(&mut *g, SlicePlan::new(0, detail))
        .unwrap();

    let a = straight.checkpoint();
    let b = resumed.checkpoint();
    assert_eq!(
        a.len(),
        b.len(),
        "checkpoint image size diverged after resume"
    );
    assert!(a == b, "resumed run diverged from the straight run");
    // Spot-check the headline counters too, for a readable failure mode.
    assert_eq!(straight.stats().instructions, resumed.stats().instructions);
    assert_eq!(straight.stats().last_retire, resumed.stats().last_retire);
}

#[test]
fn resume_is_bit_identical_for_all_generations() {
    for cfg in CoreConfig::all_generations() {
        assert_resume_invariant(cfg, 8_000, 12_000, None);
    }
}

#[test]
fn resume_is_bit_identical_with_random_warmups_and_faults() {
    // Deterministic pseudo-random warmup lengths (splitmix-style walk),
    // alternating fault injection on/off across the cases.
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    let configs = CoreConfig::all_generations();
    for (i, cfg) in configs.into_iter().enumerate() {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let warmup = 1_000 + (x >> 48); // 1_000 ..= 66_535
        let fault = if i % 2 == 0 {
            Some(FaultPlan::chaos(7 + i as u64))
        } else {
            None
        };
        assert_resume_invariant(cfg, warmup, 6_000, fault);
    }
}

#[test]
fn resume_restores_the_fault_injector_from_the_image() {
    let cfg = CoreConfig::m4();
    let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
    sim.attach_fault_injector(FaultPlan::chaos(11));
    let slice = &standard_suite(1)[0];
    let mut g = slice.build().unwrap();
    sim.run_warmup(&mut *g, 5_000).unwrap();
    let image = sim.checkpoint();

    let resumed = Simulator::resume_with_config(cfg, &image).unwrap();
    assert_eq!(
        sim.fault_stats().unwrap().total(),
        resumed.fault_stats().unwrap().total(),
        "injection counters must survive the round trip"
    );
}

#[test]
fn resume_reads_the_generation_from_the_header() {
    let mut sim = SimBuilder::config(CoreConfig::m2()).build().unwrap();
    let slice = &standard_suite(1)[1];
    let mut g = slice.build().unwrap();
    sim.run_warmup(&mut *g, 3_000).unwrap();
    let image = sim.checkpoint();

    let resumed = Simulator::resume(&image).unwrap();
    assert_eq!(resumed.config().gen, sim.config().gen);
    assert_eq!(resumed.stats().instructions, sim.stats().instructions);
}

#[test]
fn corrupted_images_yield_typed_errors_not_panics() {
    let mut sim = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let slice = &standard_suite(1)[2];
    let mut g = slice.build().unwrap();
    sim.run_warmup(&mut *g, 2_000).unwrap();
    let image = sim.checkpoint();

    // Bad magic.
    let mut bad = image.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        Simulator::resume(&bad),
        Err(SimError::SnapshotDecode { .. })
    ));

    // Unsupported format version.
    let mut bad = image.clone();
    bad[4] = 0xFF;
    bad[5] = 0xFF;
    assert!(matches!(
        Simulator::resume(&bad),
        Err(SimError::SnapshotDecode { .. })
    ));

    // Truncation at a sweep of prefix lengths.
    for cut in [9, 64, image.len() / 2, image.len() - 1] {
        assert!(matches!(
            Simulator::resume(&image[..cut]),
            Err(SimError::SnapshotDecode { .. })
        ));
    }

    // Wrong generation geometry: an M6 image into an M1 machine.
    assert!(matches!(
        Simulator::resume_with_config(CoreConfig::m1(), &image),
        Err(SimError::SnapshotDecode { .. })
    ));

    // Trailing garbage.
    let mut bad = image.clone();
    bad.extend_from_slice(&[0u8; 3]);
    assert!(matches!(
        Simulator::resume(&bad),
        Err(SimError::SnapshotDecode { .. })
    ));

    // Flipped interior bytes must never panic (they may legitimately
    // decode if the flip lands in a counter, but structural damage must
    // surface as the typed error).
    for at in (8..image.len()).step_by(977) {
        let mut bad = image.clone();
        bad[at] ^= 0x55;
        let _ = Simulator::resume(&bad);
    }
}
