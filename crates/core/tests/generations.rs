//! Cross-generation properties the paper's evaluation claims (Figs. 16–17,
//! Tables I/IV): IPC grows every generation, load latency falls.

use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::sim::Simulator;
use exynos_trace::{standard_suite, SlicePlan};

/// Simulate a subset of the catalog on one generation; returns
/// (geo-ish mean IPC, mean load latency).
fn run_suite(cfg: &CoreConfig, max_slices: usize) -> (f64, f64) {
    let suite = standard_suite(1);
    let mut ipcs = Vec::new();
    let mut lats = Vec::new();
    for slice in suite.iter().take(max_slices) {
        let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
        let mut g = slice.build().unwrap();
        let r = sim.run_slice(&mut *g, SlicePlan::new(4_000, 25_000)).unwrap();
        ipcs.push(r.ipc);
        lats.push(r.avg_load_latency);
    }
    let mean_ipc = ipcs.iter().sum::<f64>() / ipcs.len() as f64;
    let mean_lat = lats.iter().sum::<f64>() / lats.len() as f64;
    (mean_ipc, mean_lat)
}

#[test]
fn ipc_improves_m1_to_m6() {
    let (m1, _) = run_suite(&CoreConfig::m1(), 14);
    let (m6, _) = run_suite(&CoreConfig::m6(), 14);
    assert!(
        m6 > m1 * 1.5,
        "M6 must deliver a large frequency-neutral IPC gain over M1: {m1:.2} -> {m6:.2}"
    );
}

#[test]
fn ipc_never_regresses_badly_across_generations() {
    let mut prev = 0.0;
    let mut prev_name = "";
    for cfg in CoreConfig::all_generations() {
        let name = cfg.gen.name();
        let (ipc, _) = run_suite(&cfg, 12);
        assert!(
            ipc >= prev * 0.97,
            "{name} regressed vs {prev_name}: {ipc:.2} vs {prev:.2}"
        );
        prev = ipc;
        prev_name = name;
    }
}

#[test]
fn load_latency_falls_m1_to_m6() {
    let (_, l1) = run_suite(&CoreConfig::m1(), 14);
    let (_, l6) = run_suite(&CoreConfig::m6(), 14);
    assert!(
        l6 < l1 * 0.75,
        "average load latency must fall substantially: {l1:.1} -> {l6:.1}"
    );
}

#[test]
fn high_ipc_workloads_unlocked_by_width() {
    // §XI: "High-IPC workloads were capped by M1's 4-wide design."
    let suite = standard_suite(1);
    // nest3 has ~30-instruction (unrolled) basic blocks: long enough that
    // fetch width (not the taken-branch redirect rate) is the binding limit.
    let nest = suite
        .iter()
        .find(|s| s.name.starts_with("specfp/nest3"))
        .unwrap();
    let run = |cfg: CoreConfig| {
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        let mut g = nest.build().unwrap();
        sim.run_slice(&mut *g, SlicePlan::new(4_000, 25_000)).unwrap().ipc
    };
    let m1 = run(CoreConfig::m1());
    let m3 = run(CoreConfig::m3());
    let m6 = run(CoreConfig::m6());
    assert!(m1 <= 4.0 + 1e-9, "M1 is 4-wide");
    assert!(m3 > m1 * 1.2, "6-wide M3 must lift the cap: {m1:.2} -> {m3:.2}");
    assert!(m6 >= m3, "8-wide M6 at least holds: {m3:.2} -> {m6:.2}");
}

#[test]
fn low_ipc_workloads_improved_by_memory_path() {
    // §XI: "Low-IPC workloads were greatly improved by more sophisticated,
    // coordinated prefetching" and the §IX latency features.
    let suite = standard_suite(1);
    let chase = suite
        .iter()
        .find(|s| s.name.starts_with("game/chase"))
        .unwrap();
    let run = |cfg: CoreConfig| {
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        let mut g = chase.build().unwrap();
        let r = sim.run_slice(&mut *g, SlicePlan::new(4_000, 25_000)).unwrap();
        (r.ipc, r.avg_load_latency)
    };
    let (i1, l1) = run(CoreConfig::m1());
    let (i6, l6) = run(CoreConfig::m6());
    assert!(i6 > i1 * 1.5, "chase IPC: {i1:.3} -> {i6:.3}");
    assert!(l6 < l1, "chase latency: {l1:.1} -> {l6:.1}");
}

#[test]
fn uoc_supplies_uops_on_m5_loop_kernels() {
    let suite = standard_suite(1);
    let nest = suite.iter().find(|s| s.name.starts_with("specfp/")).unwrap();
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    let mut g = nest.build().unwrap();
    sim.run_slice(&mut *g, SlicePlan::new(4_000, 25_000)).unwrap();
    assert!(
        sim.stats().uoc_supplied > 0,
        "UOC must supply µops on a lockable kernel: {:?}",
        sim.uoc_stats()
    );
    // M4 has no UOC.
    let mut sim4 = SimBuilder::config(CoreConfig::m4()).build().unwrap();
    let mut g4 = nest.build().unwrap();
    sim4.run_slice(&mut *g4, SlicePlan::new(4_000, 25_000)).unwrap();
    assert_eq!(sim4.stats().uoc_supplied, 0);
}

#[test]
fn deterministic_replay() {
    let suite = standard_suite(1);
    let s = &suite[5];
    let run = || {
        let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
        let mut g = s.build().unwrap();
        let r = sim.run_slice(&mut *g, SlicePlan::new(2_000, 10_000)).unwrap();
        (r.cycles, r.mpki.to_bits(), r.avg_load_latency.to_bits())
    };
    assert_eq!(run(), run(), "simulation must be fully deterministic");
}
