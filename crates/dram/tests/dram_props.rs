//! Property tests on the DRAM model — most importantly, that background
//! (prefetch) traffic can never delay demand reads.

use exynos_dram::{Bank, DramConfig, DramTiming, MemoryController};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A demand read's completion depends only on prior demand traffic:
    /// interleaving arbitrary background reads never delays it.
    #[test]
    fn background_never_delays_demand(
        demand in prop::collection::vec((0u64..64, 0u64..50), 40),
        background in prop::collection::vec((0u64..64, 0u64..50), 40),
    ) {
        let t = DramTiming::default();
        // Run 1: demand only.
        let mut b1 = Bank::new(t);
        let mut now = 0u64;
        let mut demand_only = Vec::new();
        for (row, gap) in &demand [..] {
            now += gap;
            demand_only.push(b1.read(*row, now));
        }
        // Run 2: same demand stream with background interleaved.
        let mut b2 = Bank::new(t);
        let mut now = 0u64;
        let mut bg_iter = background.iter().cycle();
        let mut mixed = Vec::new();
        for (row, gap) in &demand[..] {
            now += gap;
            let (brow, bgap) = bg_iter.next().unwrap();
            let _ = b2.read_background(*brow, now.saturating_sub(*bgap));
            mixed.push(b2.read(*row, now));
        }
        for (i, (a, b)) in demand_only.iter().zip(&mixed).enumerate() {
            // Background never occupies the demand-priority bank slot, but
            // it can legitimately perturb the *row buffer* (turning a hit
            // into a precharge+activate). That per-access perturbation can
            // accumulate through busy_demand, so the bound is one
            // row-cycle per demand access so far — and nothing more.
            let slack = (i as u64 + 1) * (t.t_rp + t.t_rcd);
            prop_assert!(
                *b <= *a + slack,
                "demand read {i} delayed beyond row interference: {b} vs {a}"
            );
        }
    }

    /// Reads always complete after they arrive, and bank service is
    /// monotone: a later arrival never completes before an earlier one's
    /// burst on the same bank.
    #[test]
    fn reads_complete_after_arrival(reqs in prop::collection::vec((0u64..16, 0u64..100), 60)) {
        let mut c = MemoryController::new(DramConfig::m1());
        let min = DramConfig::m1().outbound() + DramTiming::default().t_cas;
        let mut now = 0u64;
        for (row, gap) in reqs {
            now += gap;
            let done = c.read(row * 2048 * 8, now);
            prop_assert!(done >= now + min, "done {done} < now {now} + min {min}");
        }
    }

    /// The fast path strictly dominates: for any request stream, M4-path
    /// completion times are never later than M1-path ones.
    #[test]
    fn fast_path_dominates(reqs in prop::collection::vec((0u64..4096, 0u64..120), 50)) {
        let mut slow = MemoryController::new(DramConfig::m1());
        let mut fast = MemoryController::new(DramConfig::m4());
        let mut now = 0u64;
        for (line, gap) in reqs {
            now += gap;
            let a = slow.read(line * 64, now);
            let b = fast.read(line * 64, now);
            prop_assert!(b <= a, "fast path slower: {b} vs {a}");
        }
    }

    /// Hints never slow reads down.
    #[test]
    fn hints_never_hurt(reqs in prop::collection::vec((0u64..512, 0u64..200, any::<bool>()), 50)) {
        let mut plain = MemoryController::new(DramConfig::m5());
        let mut hinted = MemoryController::new(DramConfig::m5());
        let mut now = 0u64;
        for (line, gap, hint) in reqs {
            now += gap;
            let addr = line * 64;
            if hint {
                hinted.activate_hint(addr, now.saturating_sub(30));
            }
            let a = plain.read(addr, now);
            let b = hinted.read(addr, now);
            prop_assert!(b <= a + DramTiming::default().t_rp, "hint hurt: {b} vs {a}");
        }
    }
}
