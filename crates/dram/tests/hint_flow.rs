#[test]
fn hint_then_read_hits() {
    use exynos_dram::{DramConfig, MemoryController};
    let mut c = MemoryController::new(DramConfig::m5());
    let mut hits_expected = 0;
    for i in 0..100u64 {
        let addr = 0x1000_0000 + i * 8192 * 13;
        let t = i * 500;
        c.activate_hint(addr, t);
        let _ = c.read(addr, t);
        hits_expected += 1;
    }
    println!("stats={:?} expected_hits~{hits_expected}", c.stats());
    assert!(c.stats().row_hits >= 95);
}
