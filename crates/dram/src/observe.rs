//! [`Observable`] wiring for the DRAM-path statistics producers.

use crate::controller::DramStats;
use crate::specread::SpecReadStats;
use exynos_telemetry::{Observable, Value};

impl Observable for DramStats {
    fn component(&self) -> &'static str {
        "dram.ctrl"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("reads", Value::U64(self.reads));
        f("row_hits", Value::U64(self.row_hits));
        f("hints", Value::U64(self.hints));
        f("prefetch_deferred", Value::U64(self.prefetch_deferred));
        f("total_latency", Value::U64(self.total_latency));
    }
}

impl Observable for SpecReadStats {
    fn component(&self) -> &'static str {
        "dram.specread"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("speculated", Value::U64(self.speculated));
        f("cancelled", Value::U64(self.cancelled));
        f("useful", Value::U64(self.useful));
        f("wasted", Value::U64(self.wasted));
    }
}
