//! # exynos-dram — DRAM timing and the §IX memory-latency features
//!
//! * [`bank`] — open-page DRAM banks (tRCD/tRP/tCAS) with early-activate
//!   support;
//! * [`controller`] — the memory controller behind the three-domain,
//!   four-crossing path, with the M4 data fast path and M5 early
//!   page-activate sideband;
//! * [`specread`] — the M5 speculative cache-lookup bypass: a
//!   history-based miss predictor plus the interconnect snoop-filter
//!   directory acting as the cancel/"corrector" predictor.

#![warn(missing_docs)]

pub mod bank;
pub mod controller;
pub mod observe;
pub mod specread;

pub use bank::{Bank, DramTiming};
pub use controller::{DramConfig, DramStats, MemoryController};
pub use specread::{MissPredictor, SnoopFilter, SpecDecision, SpecReadController, SpecReadStats};
