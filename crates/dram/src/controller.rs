//! The memory controller with the cross-domain path of §IX.
//!
//! "The Exynos mobile processor designs contain three different
//! voltage/frequency domains along the core's path to main memory: the
//! core domain, an interconnect domain, and a memory controller domain ...
//! this requires four on-die asynchronous crossings (two outbound, two
//! inbound), as well as several blocks' worth of buffering."
//!
//! Generational latency features:
//! * **M4 data fast path** — a dedicated DRAM→CPU return that "bypasses
//!   multiple levels of cache return path and interconnect queuing stages"
//!   and replaces the two inbound crossings with one direct crossing;
//! * **M5 early page activate** — a sideband hint that opens the DRAM page
//!   ahead of the access (also one crossing instead of two).

use crate::bank::{Bank, DramTiming};

/// Controller geometry and the per-generation path features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Bank timing.
    pub timing: DramTiming,
    /// One asynchronous domain-crossing latency (core cycles).
    pub crossing: u64,
    /// Interconnect + controller queuing/buffering per direction.
    pub queuing: u64,
    /// M4+: dedicated DRAM→CPU data fast path (one inbound crossing, no
    /// return queuing).
    pub fast_path: bool,
    /// M5+: early page-activate sideband.
    pub early_activate: bool,
}

impl DramConfig {
    /// M1–M3: full four-crossing path.
    pub fn m1() -> DramConfig {
        DramConfig {
            banks: 8,
            row_bytes: 2048,
            timing: DramTiming::default(),
            crossing: 9,
            queuing: 14,
            fast_path: false,
            early_activate: false,
        }
    }

    /// M4: adds the data fast path.
    pub fn m4() -> DramConfig {
        DramConfig {
            fast_path: true,
            ..DramConfig::m1()
        }
    }

    /// M5/M6: fast path + early page activate.
    pub fn m5() -> DramConfig {
        DramConfig {
            early_activate: true,
            ..DramConfig::m4()
        }
    }

    /// Outbound flight time (request to the controller).
    pub fn outbound(&self) -> u64 {
        2 * self.crossing + self.queuing
    }

    /// Inbound flight time (data back to the core).
    pub fn inbound(&self) -> u64 {
        if self.fast_path {
            self.crossing
        } else {
            2 * self.crossing + self.queuing
        }
    }
}

/// Memory-controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads served.
    pub reads: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Early-activate hints sent.
    pub hints: u64,
    /// Low-priority prefetch reads deferred behind demand traffic.
    pub prefetch_deferred: u64,
    /// Total occupancy-cycle latency accumulated (for averages).
    pub total_latency: u64,
}

/// The memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl MemoryController {
    /// Build a controller from `cfg`.
    ///
    /// # Panics
    /// Panics if `banks` is zero.
    pub fn new(cfg: DramConfig) -> MemoryController {
        assert!(cfg.banks > 0);
        MemoryController {
            banks: (0..cfg.banks).map(|_| Bank::new(cfg.timing)).collect(),
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn map(&self, addr: u64) -> (usize, u64) {
        let row_addr = addr / self.cfg.row_bytes;
        let bank = (row_addr ^ (row_addr >> 7)) as usize % self.banks.len();
        (bank, row_addr / self.banks.len() as u64)
    }

    /// Read `addr`, with the request leaving the core at `now`; returns
    /// the cycle the data arrives back at the CPU cluster.
    pub fn read(&mut self, addr: u64, now: u64) -> u64 {
        let (bank, row) = self.map(addr);
        let arrive = now + self.cfg.outbound();
        let data_at_mc = self.banks[bank].read(row, arrive);
        let done = data_at_mc + self.cfg.inbound();
        self.stats.reads += 1;
        let hits: u64 = self.banks.iter().map(|b| b.hits).sum();
        self.stats.row_hits = hits;
        self.stats.total_latency += done - now;
        done
    }

    /// A low-priority (prefetch) read. Demand traffic always wins bank
    /// arbitration, so a prefetch occupies the bank only when it is idle
    /// at arrival; otherwise it is served opportunistically in a later
    /// gap (its completion is delayed past the bank's busy horizon but it
    /// adds no queueing that demands would see). Returns the completion
    /// cycle.
    pub fn read_background(&mut self, addr: u64, now: u64) -> u64 {
        let (bank, row) = self.map(addr);
        let arrive = now + self.cfg.outbound();
        self.stats.reads += 1;
        if self.banks[bank].busy_at(arrive) {
            self.stats.prefetch_deferred += 1;
        }
        let data_at_mc = self.banks[bank].read_background(row, arrive);
        data_at_mc + self.cfg.inbound()
    }

    /// Send an early page-activate hint for `addr` at `now` (no-op unless
    /// the generation has the sideband). The hint takes a *single*
    /// crossing, so it reaches the controller ahead of the read.
    pub fn activate_hint(&mut self, addr: u64, now: u64) {
        if !self.cfg.early_activate {
            return;
        }
        self.stats.hints += 1;
        let (bank, row) = self.map(addr);
        self.banks[bank].activate_hint(row, now + self.cfg.crossing);
    }

    /// Unloaded round-trip latency of a row-buffer hit (for reporting).
    pub fn best_case_latency(&self) -> u64 {
        self.cfg.outbound() + self.cfg.timing.t_cas + self.cfg.timing.t_burst + self.cfg.inbound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_cuts_return_latency() {
        let mut slow = MemoryController::new(DramConfig::m1());
        let mut fast = MemoryController::new(DramConfig::m4());
        let a = slow.read(0x1000, 0);
        let b = fast.read(0x1000, 0);
        let saved = DramConfig::m1().inbound() - DramConfig::m4().inbound();
        assert_eq!(a - b, saved);
        assert!(saved >= 20, "fast path must save a crossing plus queuing");
    }

    #[test]
    fn early_activate_hides_activation() {
        // Hint sent sufficiently ahead of the read hides tRCD.
        let mut c = MemoryController::new(DramConfig::m5());
        c.activate_hint(0x2000, 0);
        let t = DramTiming::default();
        let done_hinted = c.read(0x2000, t.t_rcd); // read launched later
        let mut c2 = MemoryController::new(DramConfig::m5());
        let done_cold = c2.read(0x2000, t.t_rcd);
        assert!(done_hinted < done_cold, "{done_hinted} !< {done_cold}");
        assert_eq!(done_cold - done_hinted, t.t_rcd);
    }

    #[test]
    fn hint_is_noop_without_feature() {
        let mut c = MemoryController::new(DramConfig::m4());
        c.activate_hint(0x2000, 0);
        assert_eq!(c.stats().hints, 0);
    }

    #[test]
    fn same_row_reads_hit_row_buffer() {
        let mut c = MemoryController::new(DramConfig::m1());
        let d1 = c.read(0x4000, 0);
        let _d2 = c.read(0x4040, d1);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn banks_overlap_independent_requests() {
        let mut c = MemoryController::new(DramConfig::m1());
        // Two addresses in different banks issued back to back overlap;
        // same bank serializes.
        let a_done = c.read(0x0, 0);
        // Find an address mapping to a different bank.
        let mut other = 0x800u64;
        while {
            let (b0, _) = c.map(0x0);
            let (b1, _) = c.map(other);
            b0 == b1
        } {
            other += 0x800;
        }
        let b_done = c.read(other, 0);
        assert!(b_done <= a_done + 1, "different banks must overlap");
        let mut c2 = MemoryController::new(DramConfig::m1());
        let x = c2.read(0x0, 0);
        let y = c2.read(0x0 + 64, 0); // same row, same bank: serialized burst
        assert!(y > x);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for MemoryController {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::DRAM_CONTROLLER);
            enc.seq(self.banks.len());
            for b in &self.banks {
                b.save(enc);
            }
            enc.u64(self.stats.reads);
            enc.u64(self.stats.row_hits);
            enc.u64(self.stats.hints);
            enc.u64(self.stats.prefetch_deferred);
            enc.u64(self.stats.total_latency);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::DRAM_CONTROLLER)?;
            let n = dec.seq(16)?;
            if n != self.banks.len() {
                return Err(SnapshotError::Geometry {
                    what: "dram banks",
                    expected: self.banks.len() as u64,
                    found: n as u64,
                });
            }
            for b in &mut self.banks {
                b.restore(dec)?;
            }
            self.stats.reads = dec.u64()?;
            self.stats.row_hits = dec.u64()?;
            self.stats.hints = dec.u64()?;
            self.stats.prefetch_deferred = dec.u64()?;
            self.stats.total_latency = dec.u64()?;
            dec.end_section()
        }
    }
}
