//! DRAM bank and page (row-buffer) timing.
//!
//! A bank serves one open row at a time. A read to the open row costs CAS
//! only; a closed bank pays activate (tRCD) first; a conflicting open row
//! pays precharge (tRP) too. The M5 *early page activate* hint (§IX) can
//! open a row ahead of the demand read, hiding tRCD (and tRP) under the
//! request's flight time.
//!
//! All times are in core-clock cycles (the paper's simulations run every
//! generation at one frequency so per-cycle comparisons hold, §III).

/// DRAM timing parameters (core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row activate (tRCD).
    pub t_rcd: u64,
    /// Precharge (tRP).
    pub t_rp: u64,
    /// Column access (tCAS/tCL).
    pub t_cas: u64,
    /// Data burst occupancy per access.
    pub t_burst: u64,
}

impl Default for DramTiming {
    /// LPDDR4-ish timings at a 2.6 GHz core clock.
    fn default() -> DramTiming {
        DramTiming {
            t_rcd: 47,
            t_rp: 47,
            t_cas: 47,
            t_burst: 8,
        }
    }
}

/// One DRAM bank with an open-page policy.
#[derive(Debug, Clone)]
pub struct Bank {
    timing: DramTiming,
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Cycle at which the open row's activation completes (reads arriving
    /// earlier wait for the remainder).
    row_ready_at: u64,
    /// Cycle until which the bank is busy with demand work.
    busy_demand: u64,
    /// Cycle until which the bank is busy with any work.
    busy_any: u64,
    /// Row-buffer hits / misses / conflicts served.
    pub hits: u64,
    /// Accesses to a closed bank.
    pub misses: u64,
    /// Accesses that had to close another row first.
    pub conflicts: u64,
}

impl Bank {
    /// A closed, idle bank.
    pub fn new(timing: DramTiming) -> Bank {
        Bank {
            timing,
            open_row: None,
            row_ready_at: 0,
            busy_demand: 0,
            busy_any: 0,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// Currently open row.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether the bank has any work at `cycle`.
    pub fn busy_at(&self, cycle: u64) -> bool {
        self.busy_any > cycle
    }

    /// Cycle at which all of the bank's current work completes.
    pub fn busy_horizon(&self) -> u64 {
        self.busy_any
    }

    /// Open `row` (if needed) for an access starting at `start`; returns
    /// the cycle column access may begin (activation completion). Row
    /// activations take real time — a row opened by an overlapping access
    /// or hint is only usable once its tRCD has elapsed. Hit/miss/conflict
    /// accounting happens here.
    fn open_for(&mut self, row: u64, start: u64) -> u64 {
        match self.open_row {
            Some(r) if r == row => {
                self.hits += 1;
                // Waiting for a pending activation can never be worse than
                // starting a fresh precharge+activate now (call order may
                // present a logically-later opener first).
                let fresh = start + self.timing.t_rp + self.timing.t_rcd;
                start.max(self.row_ready_at.min(fresh))
            }
            Some(_) => {
                self.conflicts += 1;
                self.open_row = Some(row);
                self.row_ready_at = start + self.timing.t_rp + self.timing.t_rcd;
                self.row_ready_at
            }
            None => {
                self.misses += 1;
                self.open_row = Some(row);
                self.row_ready_at = start + self.timing.t_rcd;
                self.row_ready_at
            }
        }
    }

    /// Serve a demand read of `row` arriving at `now`; returns the cycle
    /// the data burst completes. Demand reads queue only behind prior
    /// demand work — they preempt low-priority prefetch service.
    pub fn read(&mut self, row: u64, now: u64) -> u64 {
        let start = now.max(self.busy_demand);
        let col_begin = self.open_for(row, start);
        let done = col_begin + self.timing.t_cas + self.timing.t_burst;
        self.busy_demand = col_begin + self.timing.t_burst;
        self.busy_any = self.busy_any.max(self.busy_demand);
        done
    }

    /// Serve a low-priority read of `row` arriving at `now`: queues behind
    /// all prior work and never delays future demand reads.
    pub fn read_background(&mut self, row: u64, now: u64) -> u64 {
        let start = now.max(self.busy_any);
        let col_begin = self.open_for(row, start);
        let done = col_begin + self.timing.t_cas + self.timing.t_burst;
        self.busy_any = col_begin + self.timing.t_burst;
        done
    }

    /// Speculatively activate `row` at `now` (early page activate, §IX).
    /// "The page activation command is a hint the memory controller may
    /// ignore under heavy load" — ignored if the bank is busy.
    pub fn activate_hint(&mut self, row: u64, now: u64) {
        if self.busy_demand > now {
            return; // under heavy demand load: ignore the hint
        }
        match self.open_row {
            Some(r) if r == row => {
                // Already open(ing): the hint can only bring the ready
                // time forward (it may have been sent before the access
                // that opened the row, despite call order).
                self.row_ready_at = self.row_ready_at.min(now + self.timing.t_rcd);
            }
            Some(_) => {
                self.open_row = Some(row);
                self.row_ready_at = now + self.timing.t_rp + self.timing.t_rcd;
                self.busy_any = self.busy_any.max(self.row_ready_at);
            }
            None => {
                self.open_row = Some(row);
                self.row_ready_at = now + self.timing.t_rcd;
                self.busy_any = self.busy_any.max(self.row_ready_at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::default()
    }

    #[test]
    fn row_hit_is_cheapest() {
        let mut b = Bank::new(t());
        let d1 = b.read(5, 0);
        let d2 = b.read(5, d1);
        assert_eq!(d1 - 0, t().t_rcd + t().t_cas + t().t_burst);
        assert_eq!(d2 - d1, t().t_cas + t().t_burst);
        assert_eq!(b.hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut b = Bank::new(t());
        let d1 = b.read(5, 0);
        let d2 = b.read(9, d1 + 100); // idle bank, conflicting row
        assert_eq!(d2 - (d1 + 100), t().t_rp + t().t_rcd + t().t_cas + t().t_burst);
        assert_eq!(b.conflicts, 1);
    }

    #[test]
    fn busy_bank_pipelines_row_hits() {
        let mut b = Bank::new(t());
        let d1 = b.read(5, 0);
        // A second row-buffer hit arriving immediately streams one burst
        // later, not one full CAS later.
        let d2 = b.read(5, 1);
        assert_eq!(d2 - d1, t().t_burst);
    }

    #[test]
    fn activate_hint_hides_trcd() {
        let mut b = Bank::new(t());
        b.activate_hint(7, 0);
        // Demand arrives after the activation completed.
        let done = b.read(7, t().t_rcd);
        assert_eq!(done, t().t_rcd + t().t_cas + t().t_burst, "tRCD hidden");
        assert_eq!(b.hits, 1);
    }

    #[test]
    fn hint_ignored_under_load() {
        let mut b = Bank::new(t());
        let d1 = b.read(5, 0);
        b.activate_hint(9, 1); // bank busy: ignored
        assert_eq!(b.open_row(), Some(5));
        let d2 = b.read(9, d1);
        assert_eq!(d2 - d1, t().t_rp + t().t_rcd + t().t_cas + t().t_burst);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for Bank {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::DRAM_BANK);
            match self.open_row {
                Some(r) => {
                    enc.u8(1);
                    enc.u64(r);
                }
                None => enc.u8(0),
            }
            enc.u64(self.row_ready_at);
            enc.u64(self.busy_demand);
            enc.u64(self.busy_any);
            enc.u64(self.hits);
            enc.u64(self.misses);
            enc.u64(self.conflicts);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::DRAM_BANK)?;
            self.open_row = match dec.u8()? {
                0 => None,
                1 => Some(dec.u64()?),
                _ => return Err(SnapshotError::Corrupt { what: "open-row flag" }),
            };
            self.row_ready_at = dec.u64()?;
            self.busy_demand = dec.u64()?;
            self.busy_any = dec.u64()?;
            self.hits = dec.u64()?;
            self.misses = dec.u64()?;
            self.conflicts = dec.u64()?;
            dec.end_section()
        }
    }
}
