//! Speculative cache-lookup bypass for latency-critical reads (M5+, §IX).
//!
//! "Read requests are classified as 'latency critical' based on various
//! heuristics from the CPU (e.g. demand load miss, instruction cache miss,
//! table walk requests etc.) as well as a history-based cache miss
//! predictor. Such reads speculatively issue to the coherent interconnect
//! in parallel to checking the tags of the levels of cache. The coherent
//! interconnect contains a snoop filter directory ... the speculative read
//! feature utilizes the directory lookup to further predict with high
//! probability whether the requested cache line may be present in the
//! bypassed lower levels of cache. If yes, then it cancels the speculative
//! request ... acting as a second-chance 'corrector predictor' in case the
//! cache miss prediction from the first predictor is wrong."

/// A history-based cache-miss predictor (first-level heuristic), indexed
/// by load PC.
#[derive(Debug, Clone)]
pub struct MissPredictor {
    /// Saturating miss-bias counters.
    ctrs: Vec<i8>,
}

impl MissPredictor {
    /// A predictor with `rows` counters (power of two).
    ///
    /// # Panics
    /// Panics if `rows` is not a power of two.
    pub fn new(rows: usize) -> MissPredictor {
        assert!(rows.is_power_of_two());
        MissPredictor { ctrs: vec![0; rows] }
    }

    fn index(&self, pc: u64) -> usize {
        let h = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 40) as usize & (self.ctrs.len() - 1)
    }

    /// Predict whether the load at `pc` will miss all cache levels.
    pub fn predict_miss(&self, pc: u64) -> bool {
        self.ctrs[self.index(pc)] > 0
    }

    /// Train with the resolved outcome.
    pub fn train(&mut self, pc: u64, missed_all: bool) {
        let i = self.index(pc);
        let d = if missed_all { 1 } else { -1 };
        self.ctrs[i] = (self.ctrs[i] + d).clamp(-8, 8);
    }
}

/// The interconnect's snoop-filter directory: a (lossy) record of lines
/// held by the CPU cluster's caches, consulted to cancel speculative
/// DRAM reads.
#[derive(Debug, Clone)]
pub struct SnoopFilter {
    sets: usize,
    ways: usize,
    /// (line address, lru); `u64::MAX` = invalid.
    entries: Vec<(u64, u64)>,
    stamp: u64,
}

impl SnoopFilter {
    /// A directory covering `lines` entries with `ways` associativity.
    ///
    /// # Panics
    /// Panics on zero geometry.
    pub fn new(lines: usize, ways: usize) -> SnoopFilter {
        assert!(lines > 0 && ways > 0);
        let sets = (lines / ways).max(1);
        SnoopFilter {
            sets,
            ways,
            entries: vec![(u64::MAX, 0); sets * ways],
            stamp: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        ((line ^ (line >> 11)) % self.sets as u64) as usize
    }

    /// Record that the cluster now holds `line`.
    pub fn insert(&mut self, line: u64) {
        self.stamp += 1;
        let base = self.set_of(line) * self.ways;
        for i in base..base + self.ways {
            if self.entries[i].0 == line {
                self.entries[i].1 = self.stamp;
                return;
            }
        }
        let victim = (base..base + self.ways)
            .min_by_key(|&i| if self.entries[i].0 == u64::MAX { 0 } else { self.entries[i].1.max(1) })
            .unwrap_or(base);
        self.entries[victim] = (line, self.stamp);
    }

    /// Record that the cluster no longer holds `line`.
    pub fn remove(&mut self, line: u64) {
        let base = self.set_of(line) * self.ways;
        for i in base..base + self.ways {
            if self.entries[i].0 == line {
                self.entries[i] = (u64::MAX, 0);
                return;
            }
        }
    }

    /// Directory lookup: might the cluster's caches hold `line`?
    pub fn may_be_cached(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        (base..base + self.ways).any(|i| self.entries[i].0 == line)
    }
}

/// Outcome of a speculative-read decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecDecision {
    /// Not classified latency-critical / predictor said hit: no
    /// speculation; sequential tag checks then memory.
    NoSpeculation,
    /// Speculative DRAM read launched in parallel with the tag checks.
    Speculate,
    /// Speculation was requested but the snoop-filter directory predicted
    /// the line is cached: the interconnect cancels the DRAM access.
    Cancelled,
}

/// Statistics for the speculative-read feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecReadStats {
    /// Reads that speculated to DRAM.
    pub speculated: u64,
    /// Speculations cancelled by the directory.
    pub cancelled: u64,
    /// Speculations that were correct (line truly not cached).
    pub useful: u64,
    /// Speculations that were wasted (line was cached after all — the
    /// directory failed to cancel).
    pub wasted: u64,
}

/// The M5 speculative-read controller.
#[derive(Debug, Clone)]
pub struct SpecReadController {
    predictor: MissPredictor,
    stats: SpecReadStats,
    enabled: bool,
}

impl SpecReadController {
    /// A controller; `enabled` gates the whole feature (pre-M5 = false).
    pub fn new(enabled: bool) -> SpecReadController {
        SpecReadController {
            predictor: MissPredictor::new(1024),
            stats: SpecReadStats::default(),
            enabled,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SpecReadStats {
        self.stats
    }

    /// Decide for a latency-critical read at `pc` to `line`, consulting
    /// the miss predictor and the snoop-filter directory.
    pub fn decide(&mut self, pc: u64, line: u64, filter: &SnoopFilter) -> SpecDecision {
        if !self.enabled || !self.predictor.predict_miss(pc) {
            return SpecDecision::NoSpeculation;
        }
        if filter.may_be_cached(line) {
            self.stats.cancelled += 1;
            return SpecDecision::Cancelled;
        }
        self.stats.speculated += 1;
        SpecDecision::Speculate
    }

    /// Train with the resolved outcome of the read: `hit_in_cache` is
    /// whether any bypassed cache level held the line.
    pub fn resolve(&mut self, pc: u64, decision: SpecDecision, hit_in_cache: bool) {
        self.predictor.train(pc, !hit_in_cache);
        if decision == SpecDecision::Speculate {
            if hit_in_cache {
                self.stats.wasted += 1;
            } else {
                self.stats.useful += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_missy_loads() {
        let mut p = MissPredictor::new(64);
        for _ in 0..4 {
            p.train(0x4000, true);
        }
        assert!(p.predict_miss(0x4000));
        for _ in 0..8 {
            p.train(0x4000, false);
        }
        assert!(!p.predict_miss(0x4000));
    }

    #[test]
    fn snoop_filter_tracks_residency() {
        let mut f = SnoopFilter::new(256, 4);
        f.insert(0x100);
        assert!(f.may_be_cached(0x100));
        f.remove(0x100);
        assert!(!f.may_be_cached(0x100));
    }

    #[test]
    fn directory_cancels_speculation_on_cached_lines() {
        let mut c = SpecReadController::new(true);
        let mut f = SnoopFilter::new(256, 4);
        // Teach the predictor this PC misses.
        for _ in 0..4 {
            c.predictor.train(0x4000, true);
        }
        f.insert(0xABC);
        assert_eq!(c.decide(0x4000, 0xABC, &f), SpecDecision::Cancelled);
        assert_eq!(c.decide(0x4000, 0xDEF, &f), SpecDecision::Speculate);
    }

    #[test]
    fn disabled_controller_never_speculates() {
        let mut c = SpecReadController::new(false);
        let f = SnoopFilter::new(256, 4);
        for _ in 0..4 {
            c.predictor.train(0x4000, true);
        }
        assert_eq!(c.decide(0x4000, 0x123, &f), SpecDecision::NoSpeculation);
    }

    #[test]
    fn outcomes_tracked() {
        let mut c = SpecReadController::new(true);
        let f = SnoopFilter::new(256, 4);
        for _ in 0..4 {
            c.predictor.train(0x4000, true);
        }
        let d = c.decide(0x4000, 0x500, &f);
        c.resolve(0x4000, d, false);
        assert_eq!(c.stats().useful, 1);
        let d = c.decide(0x4000, 0x600, &f);
        c.resolve(0x4000, d, true); // directory failed to cancel
        assert_eq!(c.stats().wasted, 1);
    }

    #[test]
    fn lossy_directory_evicts_lru() {
        let mut f = SnoopFilter::new(4, 2);
        // Overfill one set.
        let mut in_set = Vec::new();
        let mut line = 0u64;
        while in_set.len() < 3 {
            if f.set_of(line) == 0 {
                in_set.push(line);
                f.insert(line);
            }
            line += 1;
        }
        assert!(!f.may_be_cached(in_set[0]), "oldest evicted");
        assert!(f.may_be_cached(in_set[2]));
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for MissPredictor {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::MISS_PREDICTOR);
            enc.seq(self.ctrs.len());
            for c in &self.ctrs {
                enc.i8(*c);
            }
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::MISS_PREDICTOR)?;
            let n = dec.seq(1)?;
            if n != self.ctrs.len() {
                return Err(SnapshotError::Geometry {
                    what: "miss-predictor counters",
                    expected: self.ctrs.len() as u64,
                    found: n as u64,
                });
            }
            for c in &mut self.ctrs {
                *c = dec.i8()?;
            }
            dec.end_section()
        }
    }

    impl Snapshot for SnoopFilter {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::SNOOP_FILTER);
            enc.seq(self.entries.len());
            for (line, lru) in &self.entries {
                enc.u64(*line);
                enc.u64(*lru);
            }
            enc.u64(self.stamp);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::SNOOP_FILTER)?;
            let n = dec.seq(16)?;
            if n != self.entries.len() {
                return Err(SnapshotError::Geometry {
                    what: "snoop-filter entries",
                    expected: self.entries.len() as u64,
                    found: n as u64,
                });
            }
            for e in &mut self.entries {
                *e = (dec.u64()?, dec.u64()?);
            }
            self.stamp = dec.u64()?;
            dec.end_section()
        }
    }

    impl Snapshot for SpecReadController {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::SPEC_READ);
            self.predictor.save(enc);
            enc.bool(self.enabled);
            enc.u64(self.stats.speculated);
            enc.u64(self.stats.cancelled);
            enc.u64(self.stats.useful);
            enc.u64(self.stats.wasted);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::SPEC_READ)?;
            self.predictor.restore(dec)?;
            self.enabled = dec.bool()?;
            self.stats.speculated = dec.u64()?;
            self.stats.cancelled = dec.u64()?;
            self.stats.useful = dec.u64()?;
            self.stats.wasted = dec.u64()?;
            dec.end_section()
        }
    }
}
