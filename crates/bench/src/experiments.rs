//! Experiment functions regenerating every table and figure in the
//! paper's evaluation. Each returns structured data; the `harness` binary
//! prints it, and the Criterion benches time representative kernels.

use exynos_branch::config::FrontendConfig;
use exynos_branch::frontend::FrontEnd;
use exynos_branch::history::{GlobalHistory, PathHistory};
use exynos_branch::indirect::{IndirectConfig, IndirectPredictor};
use exynos_branch::shp::{apply_bias_delta, Shp, ShpConfig};
use exynos_branch::storage_budget;
use exynos_branch::ubtb::{MicroBtb, UbtbConfig};
use exynos_core::batch::{CachedStream, ChunkCache};
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::sim::Simulator;
use std::sync::Arc;
use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
use exynos_trace::gen::markov::{MarkovBranches, MarkovParams};
use exynos_trace::gen::streaming::{MultiStride, MultiStrideParams, StrideComponent};
use exynos_trace::{standard_suite, SlicePlan, SliceSpec, TraceGen};

/// Unwrap a simulation result: benchmark traces are clean and run with no
/// fault injector, so a `SimError` here is a harness bug worth aborting on.
pub fn must<T>(r: Result<T, exynos_core::SimError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("benchmark simulation failed: {e}"),
    }
}

/// Build a catalog slice's generator. The embedded catalogs are all
/// well-formed, so a build failure here is a harness bug worth aborting
/// on; fallible callers (the service tier) go through
/// [`SliceSpec::build`](exynos_trace::SliceSpec::build) directly.
pub fn must_gen(slice: &exynos_trace::SliceSpec) -> exynos_trace::BoxedGen {
    match slice.build() {
        Ok(g) => g,
        Err(e) => panic!("workload '{}' failed to build: {e}", slice.name),
    }
}

/// Address-region base for program slices in a mixed catalog: far above
/// every synthetic slice (they start at 0, stepping 16) yet below the
/// 1M+ band `WorkloadSpec::Mix` reserves for its children.
pub const PROGRAM_REGION_BASE: u64 = 500_000;

/// The sweep catalog: the synthetic standard suite at `scale`, plus —
/// when `programs` is set — the embedded `exynos-asm` corpus as
/// `program/*` slices. Both populations build through the same fallible
/// [`TraceSource`](exynos_trace::TraceSource) API; the corpus is
/// embedded and well-formed, so a build failure here is a harness bug.
pub fn catalog_suite(scale: usize, programs: bool) -> Vec<SliceSpec> {
    let mut suite = standard_suite(scale);
    if programs {
        match exynos_asm::corpus_slices(SlicePlan::default(), PROGRAM_REGION_BASE) {
            Ok(slices) => suite.extend(slices),
            Err(e) => panic!("embedded program corpus failed to assemble: {e}"),
        }
    }
    // Collapse any program slices with identical content digests onto one
    // shared source (drops duplicate assemblies; see the trace crate).
    exynos_trace::dedupe_shared_sources(&mut suite);
    suite
}

/// A compact per-slice, per-generation result record.
#[derive(Debug, Clone)]
pub struct SliceRecord {
    /// Slice name from the catalog.
    pub name: String,
    /// Generation name.
    pub gen: &'static str,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Mispredicts per kilo-instruction.
    pub mpki: f64,
    /// Average demand-load latency (cycles).
    pub load_latency: f64,
}

/// Run the full suite (at `scale`) across all six generations with the
/// given windows, on [`crate::sweep::default_threads`] worker threads.
/// This is the engine behind Figs. 9, 16 and 17; it routes through the
/// batched lockstep engine ([`run_population_batched`]), which is
/// bit-identical to the scalar reference.
pub fn run_population(scale: usize, warmup: u64, detail: u64) -> Vec<SliceRecord> {
    run_population_batched(scale, warmup, detail, crate::sweep::default_threads())
}

/// The scalar reference engine, with an explicit worker-thread count.
///
/// Every (generation, slice) pair is an independent job — its own
/// `Simulator` built from an owned config and a freshly seeded generator
/// — so the jobs run on the work-stealing executor and are re-assembled
/// in catalog order (generation-major, slice-minor), exactly the order
/// the old serial nested loop produced. Output is bit-identical for any
/// `threads`, and the batched engine is gated against this path.
pub fn run_population_with_threads(
    scale: usize,
    warmup: u64,
    detail: u64,
    threads: usize,
) -> Vec<SliceRecord> {
    run_suite_with_threads(&standard_suite(scale), warmup, detail, threads)
}

/// [`run_population_with_threads`] over an explicit slice catalog (e.g.
/// [`catalog_suite`] with programs mixed in).
pub fn run_suite_with_threads(
    suite: &[SliceSpec],
    warmup: u64,
    detail: u64,
    threads: usize,
) -> Vec<SliceRecord> {
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    crate::sweep::run_indexed(gens.len() * per_gen, threads, |i| {
        let cfg = &gens[i / per_gen];
        let slice = &suite[i % per_gen];
        let mut sim = must(SimBuilder::config(cfg.clone()).build());
        let mut gen = must_gen(slice);
        let r = must(sim.run_slice(&mut *gen, SlicePlan::new(warmup, detail)));
        SliceRecord {
            name: slice.name.clone(),
            gen: cfg.gen.name(),
            ipc: r.ipc,
            mpki: r.mpki,
            load_latency: r.avg_load_latency,
        }
    })
}

/// [`run_population`] through the batched lockstep engine: one job per
/// *slice*, each advancing all six generations over a single shared
/// generator (see [`crate::batch::PopulationBatch`]). Whenever the
/// catalog groups >= 2 members on the same slice — always, with six
/// generations — the trace is generated once per group instead of once
/// per member. Records are re-assembled into catalog order
/// (generation-major, slice-minor), bit-identical to
/// [`run_population_with_threads`] at the same windows.
pub fn run_population_batched(
    scale: usize,
    warmup: u64,
    detail: u64,
    threads: usize,
) -> Vec<SliceRecord> {
    run_suite_batched(&standard_suite(scale), warmup, detail, threads)
}

/// [`run_population_batched`] over an explicit slice catalog (e.g.
/// [`catalog_suite`] with programs mixed in). Bit-identical to
/// [`run_suite_with_threads`] on the same catalog and windows.
pub fn run_suite_batched(
    suite: &[SliceSpec],
    warmup: u64,
    detail: u64,
    threads: usize,
) -> Vec<SliceRecord> {
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    if gens.len() < 2 {
        return run_suite_with_threads(suite, warmup, detail, threads);
    }
    let per_slice: Vec<Vec<SliceRecord>> = crate::sweep::run_indexed(per_gen, threads, |s| {
        let slice = &suite[s];
        let mut batch = crate::batch::PopulationBatch::new();
        for cfg in &gens {
            batch.push(must(SimBuilder::config(cfg.clone()).build()));
        }
        let mut gen = must_gen(slice);
        let results = must(batch.run_slice_lockstep(&mut *gen, SlicePlan::new(warmup, detail)));
        gens.iter()
            .zip(&results)
            .map(|(cfg, r)| SliceRecord {
                name: slice.name.clone(),
                gen: cfg.gen.name(),
                ipc: r.ipc,
                mpki: r.mpki,
                load_latency: r.avg_load_latency,
            })
            .collect()
    });
    let mut out = Vec::with_capacity(gens.len() * per_gen);
    for g in 0..gens.len() {
        for s in 0..per_gen {
            out.push(per_slice[s][g].clone());
        }
    }
    out
}

/// [`run_suite_batched`] through the shared [`ChunkCache`]: one lockstep
/// job per slice, each pulling its decoded record blocks through `cache`
/// (keyed by [`SliceSpec::stream_fingerprint`]). With `pipelined`, each
/// job double-buffers: a producer thread materializes chunk k+1 while
/// the batch steps chunk k. Bit-identical to [`run_suite_batched`] and
/// [`run_suite_with_threads`] for any cache budget (including zero) in
/// either mode; repeated sweeps over the same catalog are served from
/// resident chunks.
pub fn run_suite_cached(
    suite: &[SliceSpec],
    warmup: u64,
    detail: u64,
    threads: usize,
    cache: &Arc<ChunkCache>,
    pipelined: bool,
) -> Vec<SliceRecord> {
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    let per_slice: Vec<Vec<SliceRecord>> = crate::sweep::run_indexed(per_gen, threads, |s| {
        let slice = &suite[s];
        let mut batch = crate::batch::PopulationBatch::new();
        for cfg in &gens {
            batch.push(must(SimBuilder::config(cfg.clone()).build()));
        }
        let mut stream = CachedStream::for_slice(Arc::clone(cache), slice);
        let results =
            must(batch.run_slice_cached(&mut stream, SlicePlan::new(warmup, detail), pipelined));
        gens.iter()
            .zip(&results)
            .map(|(cfg, r)| SliceRecord {
                name: slice.name.clone(),
                gen: cfg.gen.name(),
                ipc: r.ipc,
                mpki: r.mpki,
                load_latency: r.avg_load_latency,
            })
            .collect()
    });
    let mut out = Vec::with_capacity(gens.len() * per_gen);
    for g in 0..gens.len() {
        for s in 0..per_gen {
            out.push(per_slice[s][g].clone());
        }
    }
    out
}

/// A pool of warmed checkpoint images, one per (generation, slice) job
/// of the population sweep, in job order (generation-major,
/// slice-minor). Building the pool pays each job's warmup exactly once;
/// every subsequent measured sweep forks from the in-memory image and
/// pays only the detail window — bit-identical to the cold run by the
/// checkpoint/resume invariant.
#[derive(Debug)]
pub struct WarmPool {
    /// Checkpoint image per job, job order.
    images: Vec<Vec<u8>>,
    /// The warmed simulators themselves, job order — the decoded states
    /// the images were snapshotted from. Forking by [`WarmPool::resident`]
    /// clone skips the snapshot codec entirely; the images remain the
    /// serialization-facing API (service checkpoints, on-disk pools).
    residents: Vec<Simulator>,
    /// Catalog scale the pool was built at.
    scale: usize,
    /// Warmup instructions burned into every image.
    warmup: u64,
}

impl WarmPool {
    /// Catalog scale the pool was built at.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Warmup instructions burned into every image.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Number of checkpoint images (one per job).
    pub fn jobs(&self) -> usize {
        self.images.len()
    }

    /// Total bytes held across all images.
    pub fn bytes(&self) -> usize {
        self.images.iter().map(Vec::len).sum()
    }

    /// Borrow job `i`'s checkpoint image (job order: generation-major,
    /// slice-minor).
    pub fn image(&self, i: usize) -> &[u8] {
        &self.images[i]
    }

    /// Fork job `i`'s warmed simulator by cloning the resident state —
    /// no snapshot decode. The clone carries no cancel token (runtime
    /// state is not part of the warmed identity); attach one with
    /// [`Simulator::set_cancel_token`] if the job needs it. By the
    /// checkpoint bit-identity invariant the clone behaves exactly like
    /// [`Simulator::resume_with_config`] on [`WarmPool::image`]`(i)`.
    pub fn resident(&self, i: usize) -> Simulator {
        let mut sim = self.residents[i].clone();
        sim.clear_cancel_token();
        sim
    }
}

/// Warm one simulator per (generation, slice) job for `warmup`
/// instructions and snapshot each into an in-memory [`WarmPool`].
pub fn build_warm_pool(scale: usize, warmup: u64, threads: usize) -> WarmPool {
    let suite = standard_suite(scale);
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    let warmed = crate::sweep::run_indexed(gens.len() * per_gen, threads, |i| {
        let cfg = &gens[i / per_gen];
        let slice = &suite[i % per_gen];
        let mut sim = must(SimBuilder::config(cfg.clone()).build());
        let mut gen = must_gen(slice);
        must(sim.run_warmup(&mut *gen, warmup));
        let image = sim.checkpoint();
        (image, sim)
    });
    let (images, residents) = warmed.into_iter().unzip();
    WarmPool { images, residents, scale, warmup }
}

/// Fallible, cancellable [`build_warm_pool`]: every warming simulator
/// carries `cancel`, so a deadline or an explicit cancel surfaces as a
/// typed [`SimError`](exynos_core::SimError) instead of a panic. The
/// service tier builds its shared pools through this path; the images
/// are bit-identical to [`build_warm_pool`]'s (the cancel token is
/// runtime-only state and never reaches a checkpoint).
pub fn try_build_warm_pool(
    scale: usize,
    warmup: u64,
    threads: usize,
    cancel: &exynos_core::cancel::CancelToken,
) -> Result<WarmPool, exynos_core::SimError> {
    let suite = standard_suite(scale);
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    let warmed = crate::sweep::run_indexed_result(gens.len() * per_gen, threads, |i| {
        let cfg = &gens[i / per_gen];
        let slice = &suite[i % per_gen];
        let mut sim = SimBuilder::config(cfg.clone()).cancel_token(cancel.clone()).build()?;
        let mut gen = slice.build()?;
        sim.run_warmup(&mut *gen, warmup)?;
        let image = sim.checkpoint();
        // Residents outlive the building job; they must not carry its
        // cancel token (a later deadline on job A canceling job B).
        sim.clear_cancel_token();
        Ok((image, sim))
    })?;
    let (images, residents) = warmed.into_iter().unzip();
    Ok(WarmPool { images, residents, scale, warmup })
}

/// [`run_population`], but forking every job from its warmed image in
/// `pool` instead of re-running the warmup. Routes through the batched
/// lockstep engine ([`run_population_warm_batched`]); results are
/// bit-identical to the cold path at the same (scale, warmup, detail).
pub fn run_population_warm(pool: &WarmPool, detail: u64, threads: usize) -> Vec<SliceRecord> {
    run_population_warm_batched(pool, detail, threads)
}

/// The scalar warm reference: one job per (generation, slice), each
/// resuming its own image and fast-forwarding its own generator.
/// Bit-identical to the cold scalar path; the batched warm engine is
/// gated against this one.
pub fn run_population_warm_scalar(pool: &WarmPool, detail: u64, threads: usize) -> Vec<SliceRecord> {
    let suite = standard_suite(pool.scale);
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    crate::sweep::run_indexed(gens.len() * per_gen, threads, |i| {
        let cfg = &gens[i / per_gen];
        let slice = &suite[i % per_gen];
        let mut sim = match Simulator::resume_with_config(cfg.clone(), &pool.images[i]) {
            Ok(sim) => sim,
            Err(e) => panic!("warm pool image {i} failed to resume: {e}"),
        };
        let mut gen = must_gen(slice);
        // Fast-forward the freshly seeded generator to where the warmed
        // simulator stopped consuming it.
        for _ in 0..sim.stats().instructions {
            let _ = gen.next_inst();
        }
        let r = must(sim.run_slice(&mut *gen, SlicePlan::new(0, detail)));
        SliceRecord {
            name: slice.name.clone(),
            gen: cfg.gen.name(),
            ipc: r.ipc,
            mpki: r.mpki,
            load_latency: r.avg_load_latency,
        }
    })
}

/// Wall-clock decomposition of a warm sweep, split at the measurement
/// boundary the reported throughput must respect: `prep_s` covers image
/// decode plus the shared generator fast-forward (work the warm pool
/// exists to make cheap, but which executes no simulator steps), and
/// `stepping_s` covers only post-resume detail stepping —
/// `stepped_insts / stepping_s` is the honest warm steps/s. With
/// `threads > 1` the two times are summed across workers (aggregate
/// worker-seconds, not wall).
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmTiming {
    /// Seconds spent resuming images and fast-forwarding generators.
    pub prep_s: f64,
    /// Seconds spent executing post-resume detail steps.
    pub stepping_s: f64,
    /// Instructions actually executed after resume.
    pub stepped_insts: u64,
}

/// [`run_population_warm`] exposing where the time went; the records are
/// identical, the [`WarmTiming`] feeds the `bench` subcommand's warm
/// throughput accounting.
pub fn run_population_warm_timed(
    pool: &WarmPool,
    detail: u64,
    threads: usize,
) -> (Vec<SliceRecord>, WarmTiming) {
    assemble_warm(run_warm_slice_groups(pool, detail, threads, None))
}

/// The resident-fork warm sweep: members clone the pool's decoded
/// simulator states (no snapshot codec) and the generator fast-forward
/// becomes a [`CachedStream::skip`] — free wherever the stream's chunks
/// are already resident in `cache`. `prep_s` shrinks to the clone cost;
/// records stay bit-identical to [`run_population_warm_timed`] and the
/// scalar warm/cold references.
pub fn run_population_warm_resident(
    pool: &WarmPool,
    detail: u64,
    threads: usize,
    cache: &Arc<ChunkCache>,
    pipelined: bool,
) -> (Vec<SliceRecord>, WarmTiming) {
    assemble_warm(run_warm_slice_groups(pool, detail, threads, Some((cache, pipelined))))
}

fn assemble_warm(
    per_slice: Vec<(Vec<SliceRecord>, WarmTiming)>,
) -> (Vec<SliceRecord>, WarmTiming) {
    let gens = CoreConfig::all_generations();
    let per_gen = per_slice.len();
    let mut timing = WarmTiming::default();
    for (_, t) in &per_slice {
        timing.prep_s += t.prep_s;
        timing.stepping_s += t.stepping_s;
        timing.stepped_insts += t.stepped_insts;
    }
    let mut out = Vec::with_capacity(gens.len() * per_gen);
    for g in 0..gens.len() {
        for (records, _) in &per_slice {
            out.push(records[g].clone());
        }
    }
    (out, timing)
}

/// [`run_population_warm_scalar`] through the batched lockstep engine:
/// one job per slice, forking all six generations from the pool's
/// resident states and skipping the shared stream's warmup through a
/// fresh chunk cache (every member consumed exactly the pool warmup, so
/// one stream cursor serves the whole group). Bit-identical to the
/// scalar warm path.
pub fn run_population_warm_batched(
    pool: &WarmPool,
    detail: u64,
    threads: usize,
) -> Vec<SliceRecord> {
    let cache = Arc::new(ChunkCache::unbounded());
    run_population_warm_resident(pool, detail, threads, &cache, false).0
}

/// One warm lockstep job per slice, returning each slice group's records
/// (generation order) plus its timing split. `cached` selects the fork
/// strategy: `None` resumes every member through the snapshot codec and
/// fast-forwards a private generator (the pre-resident baseline);
/// `Some((cache, pipelined))` clones the pool's resident states and
/// skips the warmup on a [`CachedStream`].
fn run_warm_slice_groups(
    pool: &WarmPool,
    detail: u64,
    threads: usize,
    cached: Option<(&Arc<ChunkCache>, bool)>,
) -> Vec<(Vec<SliceRecord>, WarmTiming)> {
    let suite = standard_suite(pool.scale);
    let gens = CoreConfig::all_generations();
    let per_gen = suite.len();
    crate::sweep::run_indexed(per_gen, threads, |s| {
        let slice = &suite[s];
        let t0 = std::time::Instant::now();
        let mut batch = crate::batch::PopulationBatch::new();
        for (g, cfg) in gens.iter().enumerate() {
            let i = g * per_gen + s;
            let sim = match cached {
                Some(_) => pool.resident(i),
                None => match Simulator::resume_with_config(cfg.clone(), pool.image(i)) {
                    Ok(sim) => sim,
                    Err(e) => panic!("warm pool image {i} failed to resume: {e}"),
                },
            };
            assert_eq!(
                sim.stats().instructions,
                pool.warmup,
                "warm fork {i} consumed a different warmup than the pool records"
            );
            batch.push(sim);
        }
        let (records, timing) = match cached {
            Some((cache, pipelined)) => {
                // Cursor-skip the warmup: no records are generated unless
                // a later miss needs the generator fast-forwarded.
                let mut stream = CachedStream::for_slice(Arc::clone(cache), slice);
                stream.skip(pool.warmup);
                let prep_s = t0.elapsed().as_secs_f64();
                let t1 = std::time::Instant::now();
                let results =
                    must(batch.run_slice_cached(&mut stream, SlicePlan::new(0, detail), pipelined));
                (results, (prep_s, t1.elapsed().as_secs_f64()))
            }
            None => {
                // One shared fast-forward for the whole group: every
                // member consumed exactly `pool.warmup` generator records.
                let mut gen = must_gen(slice);
                for _ in 0..pool.warmup {
                    let _ = gen.next_inst();
                }
                let prep_s = t0.elapsed().as_secs_f64();
                let t1 = std::time::Instant::now();
                let results = must(batch.run_slice_lockstep(&mut *gen, SlicePlan::new(0, detail)));
                (results, (prep_s, t1.elapsed().as_secs_f64()))
            }
        };
        let (results, (prep_s, stepping_s)) = (records, timing);
        let records: Vec<SliceRecord> = gens
            .iter()
            .zip(&results)
            .map(|(cfg, r)| SliceRecord {
                name: slice.name.clone(),
                gen: cfg.gen.name(),
                ipc: r.ipc,
                mpki: r.mpki,
                load_latency: r.avg_load_latency,
            })
            .collect();
        let stepped_insts = results.iter().map(|r| r.instructions).sum();
        (records, WarmTiming { prep_s, stepping_s, stepped_insts })
    })
}

/// Mean of a per-generation metric over records.
pub fn gen_mean(records: &[SliceRecord], gen: &str, metric: impl Fn(&SliceRecord) -> f64) -> f64 {
    let vals: Vec<f64> = records.iter().filter(|r| r.gen == gen).map(metric).collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// Sorted per-slice values of a metric for one generation (the X axis of
/// the paper's Figs. 9/16/17 "across workload slices" plots).
pub fn gen_curve(records: &[SliceRecord], gen: &str, metric: impl Fn(&SliceRecord) -> f64) -> Vec<f64> {
    let mut vals: Vec<f64> = records.iter().filter(|r| r.gen == gen).map(metric).collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    vals
}

// ---------------------------------------------------------------------
// Fig. 1 — SHP MPKI vs GHIST length
// ---------------------------------------------------------------------

/// Drive a standalone SHP (bias included) over CBP-like history-dependent
/// branch traces with the GHIST length capped at `ghist_len`; returns
/// average MPKI over the trace set.
pub fn fig1_shp_mpki_vs_ghist(ghist_len: usize, branches_per_trace: usize) -> f64 {
    use std::collections::HashMap;
    let mut total_miss = 0u64;
    let mut total_insts = 0u64;
    // A small CBP-like set whose required history spans the sweep axis:
    // phase disambiguation needs roughly sites * log2(pattern) GHIST bits,
    // so these traces need ~12, ~24, ~40, ~60, ~96 and ~144 bits.
    for (depth, sites, seed) in [
        (4u32, 6usize, 11u64),
        (8, 8, 12),
        (16, 10, 13),
        (32, 12, 14),
        (64, 16, 15),
        (64, 24, 16),
    ] {
        let mut gen = MarkovBranches::new(
            &MarkovParams {
                sites,
                history_depth: depth,
                noise: 0.01,
                work_between: 4,
                load_frac: 0.0,
                ..Default::default()
            },
            90,
            seed,
        );
        let mut shp = Shp::new(ShpConfig {
            ghist_len: ghist_len.max(1),
            ..ShpConfig::m1()
        });
        let mut g = GlobalHistory::new();
        let mut p = PathHistory::new();
        let mut biases: HashMap<u64, i8> = HashMap::new();
        let mut branches = 0usize;
        while branches < branches_per_trace {
            let inst = gen.next_inst();
            total_insts += 1;
            let Some(b) = inst.branch else { continue };
            if !b.kind.is_conditional() {
                continue;
            }
            branches += 1;
            let bias = *biases.get(&inst.pc).unwrap_or(&0);
            let pred = if ghist_len == 0 {
                // Bias-only predictor (leftmost point of the sweep).
                let taken = bias >= 0;
                let d: i8 = if taken != b.taken || bias.unsigned_abs() < 8 {
                    if b.taken { 1 } else { -1 }
                } else {
                    0
                };
                biases.insert(inst.pc, apply_bias_delta(bias, d));
                taken
            } else {
                let pr = shp.predict(inst.pc, bias, &g, &p);
                let d = shp.update(&pr, b.taken, false);
                biases.insert(inst.pc, apply_bias_delta(bias, d));
                pr.taken
            };
            if pred != b.taken {
                total_miss += 1;
            }
            g.push(b.taken);
            p.push(inst.pc);
        }
    }
    total_miss as f64 * 1000.0 / total_insts.max(1) as f64
}

// ---------------------------------------------------------------------
// Fig. 4 — µBTB graph dump
// ---------------------------------------------------------------------

/// Train a µBTB on a loop kernel and return the learned graph snapshot.
pub fn fig4_ubtb_graph() -> (Vec<(u64, u64, bool, bool, bool)>, bool) {
    let mut u = MicroBtb::new(UbtbConfig::m1());
    let mut gen = LoopNest::new(
        &LoopNestParams {
            depth: 2,
            trip_counts: vec![8, 64],
            body_len: 4,
            loads_per_body: 0,
            stores_per_body: 0,
            ..Default::default()
        },
        91,
        5,
    );
    for _ in 0..20_000 {
        let inst = gen.next_inst();
        if let Some(b) = inst.branch {
            let pred = u.predict(inst.pc);
            let ok = matches!(pred, exynos_branch::ubtb::UbtbPrediction::Hit { taken, target }
                if taken == b.taken && (!b.taken || target == b.target));
            u.update(
                inst.pc,
                b.taken,
                b.target,
                matches!(b.kind, exynos_trace::BranchKind::UncondDirect),
                ok,
            );
        }
    }
    (u.graph_snapshot(), u.is_locked())
}

// ---------------------------------------------------------------------
// Fig. 5 / Fig. 7 — taken-branch throughput and MRB refill
// ---------------------------------------------------------------------

/// Bubbles per taken branch on a chain of small always-taken basic blocks
/// *larger than the µBTB* — the mBTB-path scenario of Fig. 5, where the
/// 1AT (M3) and ZAT/ZOT (M5) mechanisms cut 2 bubbles to 1 and then 0.
pub fn fig5_bubbles_per_taken(cfg: FrontendConfig) -> f64 {
    use exynos_trace::{BranchInfo, BranchKind, Inst, Reg};
    let mut fe = FrontEnd::new(cfg);
    // 512 basic blocks of 3 instructions + an always-taken branch, cyclic.
    const BLOCKS: u64 = 512;
    const BLOCK_INSTS: u64 = 4;
    let base = 0x7_0000_0000u64;
    let block_pc = |b: u64| base + b * BLOCK_INSTS * 4;
    let mut b = 0u64;
    for _ in 0..400_000 {
        for k in 0..BLOCK_INSTS {
            let pc = block_pc(b) + k * 4;
            let inst = if k == BLOCK_INSTS - 1 {
                let next = (b + 1) % BLOCKS;
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken: true,
                        target: block_pc(next),
                    },
                    [Some(Reg::int(1)), None],
                )
            } else {
                Inst::alu(pc, Reg::int(2), [Some(Reg::int(1)), None])
            };
            let _ = fe.on_inst(&inst);
        }
        b = (b + 1) % BLOCKS;
    }
    let s = fe.stats();
    s.bubbles as f64 / s.taken_branches.max(1) as f64
}

/// MRB effect (Fig. 7): run a mispredict-prone workload on M5 with and
/// without the MRB; returns (covered redirects with MRB, bubble
/// reduction fraction).
pub fn fig7_mrb_effect() -> (u64, f64) {
    let run = |mrb: bool| -> (u64, u64, u64) {
        let mut cfg = FrontendConfig::m5();
        if !mrb {
            cfg.mrb_entries = None;
        }
        let mut fe = FrontEnd::new(cfg);
        let mut gen = MarkovBranches::new(
            &MarkovParams {
                sites: 64,
                history_depth: 8,
                noise: 0.10,
                work_between: 3,
                load_frac: 0.0,
                ..Default::default()
            },
            93,
            3,
        );
        for _ in 0..300_000 {
            let inst = gen.next_inst();
            let _ = fe.on_inst(&inst);
        }
        let s = fe.stats();
        (s.mrb_covered, s.bubbles, s.taken_branches)
    };
    let (covered, bubbles_with, _) = run(true);
    let (_, bubbles_without, _) = run(false);
    let reduction = 1.0 - bubbles_with as f64 / bubbles_without.max(1) as f64;
    (covered, reduction)
}

// ---------------------------------------------------------------------
// Fig. 8 — indirect prediction: full VPC vs M6 hybrid
// ---------------------------------------------------------------------

/// For `targets` distinct indirect targets following a noisy Markov walk,
/// returns (accuracy, mean extra prediction cycles) for the given
/// indirect configuration.
pub fn fig8_indirect(targets: usize, cfg: IndirectConfig) -> (f64, f64) {
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
    let mut perm: Vec<usize> = (0..targets).collect();
    perm.shuffle(&mut rng);
    let mut shp = Shp::new(ShpConfig::m5());
    let mut g = GlobalHistory::new();
    let mut p = PathHistory::new();
    let mut pred = IndirectPredictor::new(cfg, 64);
    let mut cur = 0usize;
    let n = 8_000;
    for _ in 0..n {
        cur = if rng.gen_bool(0.85) {
            perm[cur]
        } else {
            rng.gen_range(0..targets)
        };
        let t = 0x9000 + cur as u64 * 0x40;
        let pr = pred.predict(0x4000, &shp, &g, &p);
        let _ = pred.update(0x4000, t, pr.target, &mut shp, &mut g, &mut p);
    }
    let s = pred.stats();
    (
        s.correct as f64 / s.lookups.max(1) as f64,
        s.extra_cycles as f64 / s.lookups.max(1) as f64,
    )
}

// ---------------------------------------------------------------------
// Table II — storage budgets
// ---------------------------------------------------------------------

/// Computed storage budgets per generation: (name, shp KB, l1 KB, l2 KB).
pub fn table2_storage() -> Vec<(&'static str, f64, f64, f64)> {
    FrontendConfig::all_generations()
        .into_iter()
        .map(|c| {
            let b = storage_budget(&c);
            (c.name, b.shp_kb, b.l1btb_kb, b.l2btb_kb)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 14 / Fig. 15 — prefetch delivery and adaptivity
// ---------------------------------------------------------------------

/// One-pass/two-pass behaviour (Fig. 14): run an L2-resident stream and a
/// DRAM-sized stream on M1; returns the two-pass stats for each.
pub fn fig14_twopass() -> (exynos_prefetch::twopass::TwoPassStats, exynos_prefetch::twopass::TwoPassStats) {
    let run = |ws: u64| {
        let mut sim = must(SimBuilder::config(CoreConfig::m1()).build());
        let mut gen = MultiStride::new(
            &MultiStrideParams {
                components: vec![StrideComponent { stride: 1, repeat: 1 }],
                working_set: ws,
                work_between: 3,
                ..Default::default()
            },
            94,
            5,
        );
        must(sim.run_slice(&mut gen, SlicePlan::new(5_000, 60_000)));
        sim.memsys().twopass().stats()
    };
    // Resident: wraps within 256 KiB (fits the 2 MB M1 L2 after one lap).
    // Streaming: 256 MiB never fits.
    (run(256 << 10), run(256 << 20))
}

/// Adaptive standalone prefetcher (Fig. 15): a phase-alternating stream
/// (prefetch-friendly, then random) on M5; returns its stats.
pub fn fig15_adaptive() -> exynos_prefetch::standalone::StandaloneStats {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let mut sp = exynos_prefetch::StandalonePrefetcher::new(Default::default());
    for phase in 0..8 {
        if phase % 2 == 0 {
            // Friendly: unit-stride walk.
            let base = (phase as u64 + 1) * (1 << 24) / 64;
            for i in 0..3_000u64 {
                let _ = sp.on_l2_access(base + i, true);
                // Aggressive-mode accuracy feedback: friendly phases
                // confirm.
                if i % 4 == 0 {
                    sp.on_prefetch_outcome(true);
                }
            }
        } else {
            // Hostile: random lines.
            for _ in 0..3_000 {
                let _ = sp.on_l2_access(rng.gen::<u64>() >> 24, true);
                sp.on_prefetch_outcome(false);
            }
        }
    }
    sp.stats()
}

// ---------------------------------------------------------------------
// §IV.D — L2BTB capacity/latency ablation (BBench +2.8% claim)
// ---------------------------------------------------------------------

/// The M4 L2BTB capacity/latency change measured in isolation (§IV.D).
/// Returns ((bubbles/branch, MPKI) with the M3-era L2BTB,
/// (bubbles/branch, MPKI) with the M4 L2BTB).
pub fn btb_ablation_web() -> ((f64, f64), (f64, f64)) {
    // The paper measured the M4 L2BTB change "in isolation" (+2.8% on
    // BBench). We isolate it the same way: a front-end-only run over a
    // branch working set of ~24k sites — between the M3-era capacity
    // (16k entries) and the M4 capacity (32k) — so *retention* is the
    // differentiator. Reported as (bubbles/branch, MPKI) per config,
    // where MPKI includes the discovery redirects a thrashing L2BTB
    // re-pays every lap.
    let run = |cfg: &FrontendConfig| {
        let mut fe = FrontEnd::new(cfg.clone());
        let mut gen = MarkovBranches::new(
            &MarkovParams {
                sites: 24_000,
                history_depth: 4,
                noise: 0.0,
                work_between: 4,
                load_frac: 0.0,
                ..Default::default()
            },
            96,
            5,
        );
        for _ in 0..1_500_000 {
            let inst = gen.next_inst();
            let _ = fe.on_inst(&inst);
        }
        let s = fe.stats();
        (
            s.bubbles as f64 / s.branches.max(1) as f64,
            s.mpki(),
        )
    };
    let m4 = CoreConfig::m4();
    let mut old = m4.frontend.clone();
    old.btb.l2btb_entries = CoreConfig::m3().frontend.btb.l2btb_entries;
    old.btb.l2_fill_latency = CoreConfig::m3().frontend.btb.l2_fill_latency;
    old.btb.l2_fill_bandwidth = CoreConfig::m3().frontend.btb.l2_fill_bandwidth;
    (run(&old), run(&m4.frontend))
}

// ---------------------------------------------------------------------
// §IV.A — branch-pair statistics (60 / 24 / 16)
// ---------------------------------------------------------------------

/// Lead-taken / second-taken / both-not-taken percentages over the suite.
pub fn branch_pair_stats() -> (f64, f64, f64) {
    let mut lead = 0u64;
    let mut second = 0u64;
    let mut both_nt = 0u64;
    for slice in standard_suite(1)
        .into_iter()
        .filter(|s| s.name.starts_with("web/") || s.name.starts_with("specint/"))
    {
        let mut fe = FrontEnd::new(FrontendConfig::m1());
        let mut gen = must_gen(&slice);
        for _ in 0..20_000 {
            let inst = gen.next_inst();
            let _ = fe.on_inst(&inst);
        }
        let s = fe.stats();
        lead += s.pair_lead_taken;
        second += s.pair_second_taken;
        both_nt += s.pair_both_not_taken;
    }
    let total = (lead + second + both_nt).max(1) as f64;
    (
        100.0 * lead as f64 / total,
        100.0 * second as f64 / total,
        100.0 * both_nt as f64 / total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_longer_ghist_reduces_mpki() {
        let short = fig1_shp_mpki_vs_ghist(4, 3_000);
        let long = fig1_shp_mpki_vs_ghist(165, 3_000);
        assert!(
            long < short * 0.8,
            "GHIST 165 must clearly beat GHIST 4: {long:.2} vs {short:.2}"
        );
    }

    #[test]
    fn fig4_graph_learns_both_edge_kinds() {
        let (graph, locked) = fig4_ubtb_graph();
        assert!(locked, "kernel must lock");
        assert!(graph.len() >= 2);
        assert!(graph.iter().any(|&(_, _, t, nt, _)| t && nt), "a node with both edges");
    }

    #[test]
    fn fig5_m5_fewer_bubbles_than_m3() {
        let m3 = fig5_bubbles_per_taken(FrontendConfig::m3());
        let m5 = fig5_bubbles_per_taken(FrontendConfig::m5());
        assert!(m5 < m3, "ZAT/ZOT must cut bubbles/taken: {m5:.3} vs {m3:.3}");
    }

    #[test]
    fn fig8_hybrid_wins_at_high_target_counts() {
        let (acc_full, cyc_full) = fig8_indirect(128, IndirectConfig::full_vpc());
        let (acc_hyb, cyc_hyb) = fig8_indirect(128, IndirectConfig::m6_hybrid());
        assert!(acc_hyb > acc_full, "{acc_hyb:.3} vs {acc_full:.3}");
        assert!(cyc_hyb < cyc_full, "{cyc_hyb:.2} vs {cyc_full:.2}");
    }

    #[test]
    fn fig14_modes_differ_by_working_set() {
        let (resident, streaming) = fig14_twopass();
        assert!(resident.to_one_pass >= 1, "L2-resident flips to one-pass: {resident:?}");
        assert!(
            streaming.first_passes > streaming.one_passes,
            "streaming stays two-pass: {streaming:?}"
        );
    }

    #[test]
    fn fig15_adaptive_toggles_modes() {
        let s = fig15_adaptive();
        assert!(s.promotions >= 1, "{s:?}");
        assert!(s.demotions >= 1, "{s:?}");
        assert!(s.phantoms > 0);
    }
}

// ---------------------------------------------------------------------
// Ablations — the design choices the paper calls out, toggled one at a
// time. Each returns (metric with the feature, metric without).
// ---------------------------------------------------------------------

/// One ablation result.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Feature name.
    pub name: &'static str,
    /// Metric label ("MPKI", "bubbles/taken", "avg load lat", "IPC").
    pub metric: &'static str,
    /// Metric with the feature enabled (the shipped design).
    pub with_feature: f64,
    /// Metric with the feature disabled.
    pub without_feature: f64,
}

/// Run a with/without config pair as a two-member lockstep batch over
/// one shared generator — the ablation battery's grouping: both members
/// sit on the same (generation family, trace), so the trace is generated
/// once per pair. Returns (with, without), bit-identical to running each
/// member over its own freshly seeded copy of the generator.
fn ablation_pair(
    with_cfg: CoreConfig,
    without_cfg: CoreConfig,
    gen: &mut dyn exynos_trace::TraceGen,
    plan: SlicePlan,
) -> (exynos_core::sim::SliceResult, exynos_core::sim::SliceResult) {
    let mut batch = crate::batch::PopulationBatch::new();
    batch.push(must(SimBuilder::config(with_cfg).build()));
    batch.push(must(SimBuilder::config(without_cfg).build()));
    let r = must(batch.run_slice_lockstep(gen, plan));
    (r[0].clone(), r[1].clone())
}

fn frontend_mpki(cfg: &FrontendConfig, mk: &MarkovParams, insts: u64) -> f64 {
    let mut fe = FrontEnd::new(cfg.clone());
    let mut gen = MarkovBranches::new(mk, 97, 3);
    for _ in 0..insts {
        let inst = gen.next_inst();
        let _ = fe.on_inst(&inst);
    }
    fe.stats().mpki()
}

/// Run the front-end and memory-side ablation battery on
/// [`crate::sweep::default_threads`] worker threads.
pub fn ablations() -> Vec<Ablation> {
    ablations_with_threads(crate::sweep::default_threads())
}

/// [`ablations`] with an explicit worker-thread count. Each ablation is
/// an independent job (it builds its own front-ends / simulators), so
/// the battery runs on the work-stealing executor; results come back in
/// the fixed catalog order below regardless of `threads`.
pub fn ablations_with_threads(threads: usize) -> Vec<Ablation> {
    type AblationJob = Box<dyn Fn() -> Ablation + Send + Sync>;
    let mut battery: Vec<AblationJob> = Vec::new();
    let mk = MarkovParams {
        sites: 64,
        history_depth: 8,
        noise: 0.02,
        work_between: 3,
        load_frac: 0.0,
        ..Default::default()
    };

    // Bias-weight doubling (§IV.A): scale 2 vs 1.
    battery.push(Box::new(move || {
        let with = frontend_mpki(&FrontendConfig::m1(), &mk, 400_000);
        let mut cfg = FrontendConfig::m1();
        cfg.shp.bias_scale = 1;
        let without = frontend_mpki(&cfg, &mk, 400_000);
        Ablation { name: "SHP bias doubling", metric: "MPKI", with_feature: with, without_feature: without }
    }));

    // Always-taken filtering (§IV.A anti-aliasing). Mix AT-heavy code with
    // hard branches in a small SHP so aliasing bites.
    battery.push(Box::new(|| {
        let mk_alias = MarkovParams {
            sites: 96,
            history_depth: 8,
            noise: 0.02,
            work_between: 2,
            load_frac: 0.0,
            ..Default::default()
        };
        let mut small = FrontendConfig::m1();
        small.shp.rows = 256; // stress aliasing
        let with = frontend_mpki(&small, &mk_alias, 400_000);
        let mut nofilter = small.clone();
        nofilter.at_filter = false;
        let without = frontend_mpki(&nofilter, &mk_alias, 400_000);
        Ablation { name: "always-taken SHP filter", metric: "MPKI", with_feature: with, without_feature: without }
    }));

    // ZAT/ZOT (§IV.E): bubbles per taken branch.
    battery.push(Box::new(|| {
        let with = fig5_bubbles_per_taken(FrontendConfig::m5());
        let mut cfg = FrontendConfig::m5();
        cfg.zero_bubble_atot = false;
        let without = fig5_bubbles_per_taken(cfg);
        Ablation { name: "ZAT/ZOT replication", metric: "bubbles/taken", with_feature: with, without_feature: without }
    }));

    // MRB (§IV.E): front-end bubbles on mispredict-prone code.
    battery.push(Box::new(|| {
        let bubbles = |mrb: bool| {
            let mut cfg = FrontendConfig::m5();
            if !mrb {
                cfg.mrb_entries = None;
            }
            let mut fe = FrontEnd::new(cfg);
            let mut gen = MarkovBranches::new(
                &MarkovParams {
                    sites: 64,
                    history_depth: 8,
                    noise: 0.10,
                    work_between: 3,
                    load_frac: 0.0,
                    ..Default::default()
                },
                93,
                3,
            );
            for _ in 0..300_000 {
                let inst = gen.next_inst();
                let _ = fe.on_inst(&inst);
            }
            fe.stats().bubbles as f64 / fe.stats().taken_branches.max(1) as f64
        };
        Ablation { name: "Mispredict Recovery Buffer", metric: "bubbles/taken", with_feature: bubbles(true), without_feature: bubbles(false) }
    }));

    // Integrated vs queue confirmation (§VII.D): stride confirmations.
    battery.push(Box::new(|| {
        use exynos_prefetch::{ConfirmScheme, MultiStrideEngine, StrideConfig};
        let confirms = |scheme: ConfirmScheme| {
            let mut e = MultiStrideEngine::new(StrideConfig {
                confirm: scheme,
                ..StrideConfig::m1()
            });
            let mut line = 0u64;
            let mut phase = 0usize;
            let pat = [2u64, 2, 5];
            for _ in 0..20_000 {
                let _ = e.on_demand_line(100_000 + line);
                line += pat[phase];
                phase = (phase + 1) % 3;
            }
            e.stats().confirms as f64
        };
        Ablation {
            name: "integrated confirmation",
            metric: "confirms (higher=better)",
            with_feature: confirms(ConfirmScheme::Integrated { lookahead: 4 }),
            without_feature: confirms(ConfirmScheme::Queue { depth: 16 }),
        }
    }));

    // Speculative DRAM read (§IX): avg load latency on a pointer chase.
    // Measured with early page activate off — the two features overlap
    // (both hide the leading edge of a DRAM access), so each is ablated
    // in isolation. The with/without pair runs as one lockstep batch over
    // a shared chase.
    battery.push(Box::new(|| {
        let mut with_cfg = CoreConfig::m5();
        with_cfg.spec_read = true;
        with_cfg.dram.early_activate = false;
        let mut without_cfg = with_cfg.clone();
        without_cfg.spec_read = false;
        let mut gen = exynos_trace::gen::pointer_chase::PointerChase::new(
            &exynos_trace::gen::pointer_chase::PointerChaseParams {
                working_set: 64 << 20,
                chains: 4,
                ..Default::default()
            },
            98,
            4,
        );
        let (w, wo) = ablation_pair(with_cfg, without_cfg, &mut gen, SlicePlan::new(5_000, 40_000));
        Ablation {
            name: "speculative DRAM read",
            metric: "avg load lat",
            with_feature: w.avg_load_latency,
            without_feature: wo.avg_load_latency,
        }
    }));

    // Data fast path (§IX, M4): avg load latency on a DRAM-bound chase.
    battery.push(Box::new(|| {
        let mut with_cfg = CoreConfig::m4();
        with_cfg.dram.fast_path = true;
        let mut without_cfg = with_cfg.clone();
        without_cfg.dram.fast_path = false;
        let mut gen = exynos_trace::gen::pointer_chase::PointerChase::new(
            &exynos_trace::gen::pointer_chase::PointerChaseParams {
                working_set: 64 << 20,
                chains: 2,
                ..Default::default()
            },
            99,
            4,
        );
        let (w, wo) = ablation_pair(with_cfg, without_cfg, &mut gen, SlicePlan::new(5_000, 40_000));
        Ablation {
            name: "DRAM data fast path",
            metric: "avg load lat",
            with_feature: w.avg_load_latency,
            without_feature: wo.avg_load_latency,
        }
    }));

    // Early page activate (§IX, M5).
    battery.push(Box::new(|| {
        let mut with_cfg = CoreConfig::m5();
        with_cfg.dram.early_activate = true;
        let mut without_cfg = with_cfg.clone();
        without_cfg.dram.early_activate = false;
        let mut gen = exynos_trace::gen::pointer_chase::PointerChase::new(
            &exynos_trace::gen::pointer_chase::PointerChaseParams {
                working_set: 64 << 20,
                chains: 2,
                ..Default::default()
            },
            100,
            4,
        );
        let (w, wo) = ablation_pair(with_cfg, without_cfg, &mut gen, SlicePlan::new(5_000, 40_000));
        Ablation {
            name: "early page activate",
            metric: "avg load lat",
            with_feature: w.avg_load_latency,
            without_feature: wo.avg_load_latency,
        }
    }));

    // Buddy prefetcher (§VIII.B, M4): IPC on a 128 B-correlated workload.
    battery.push(Box::new(|| {
        let mut with_cfg = CoreConfig::m4();
        with_cfg.buddy = true;
        let mut without_cfg = with_cfg.clone();
        without_cfg.buddy = false;
        // Spatial payloads touch the second sector of each chased line's
        // 128 B granule.
        let mut gen = exynos_trace::gen::pointer_chase::PointerChase::new(
            &exynos_trace::gen::pointer_chase::PointerChaseParams {
                working_set: 32 << 20,
                chains: 4,
                spatial_payload: true,
                ..Default::default()
            },
            101,
            4,
        );
        let (w, wo) = ablation_pair(with_cfg, without_cfg, &mut gen, SlicePlan::new(5_000, 40_000));
        Ablation {
            name: "Buddy prefetcher",
            metric: "IPC (higher=better)",
            with_feature: w.ipc,
            without_feature: wo.ipc,
        }
    }));

    // Standalone prefetcher (§VIII.C, M5): it observes "a global view of
    // both the instruction and data accesses at the lower cache level" —
    // unlike the L1 engines, it covers the *instruction* stream. Measure
    // IPC on a straight-line code loop far larger than the L1I.
    battery.push(Box::new(|| {
        let with_cfg = CoreConfig::m5();
        let mut without_cfg = with_cfg.clone();
        without_cfg.standalone = None;
        // ~700 KB of code walked sequentially: every line is an L1I
        // miss; only an L2-level prefetcher can stay ahead of fetch.
        let mut gen = MarkovBranches::new(
            &MarkovParams {
                sites: 20_000,
                history_depth: 4,
                noise: 0.0,
                work_between: 4,
                load_frac: 0.0,
                ..Default::default()
            },
            102,
            4,
        );
        let (w, wo) =
            ablation_pair(with_cfg, without_cfg, &mut gen, SlicePlan::new(10_000, 60_000));
        Ablation {
            name: "standalone L2/L3 prefetcher",
            metric: "IPC (higher=better)",
            with_feature: w.ipc,
            without_feature: wo.ipc,
        }
    }));

    crate::sweep::run_indexed(battery.len(), threads, |i| battery[i]())
}

// ---------------------------------------------------------------------
// Fig. 10 — cross-context attack success rate
// ---------------------------------------------------------------------

/// The Fig. 10 attack-rate sweep: cross-context BTB training success with
/// and without CONTEXT_HASH target encryption, `trials` trials each.
/// Returns `(encrypted, hits, trials)` per setting in catalog order
/// (plain first); the two settings run as independent jobs on the
/// work-stealing executor.
pub fn attack_rate_sweep(trials: u32, threads: usize) -> Vec<(bool, u32, u32)> {
    let settings = [false, true];
    crate::sweep::run_indexed(settings.len(), threads, |i| {
        let encrypt = settings[i];
        let (hits, total) = exynos_secure::attack::cross_training_rate(encrypt, trials);
        (encrypt, hits, total)
    })
}

// ---------------------------------------------------------------------
// §V design space — flush-on-switch vs CONTEXT_HASH encryption
// ---------------------------------------------------------------------

/// Compare the §V mitigation options on a context-switch-heavy web
/// workload: returns `(policy name, post-switch MPKI over the recovery
/// window)` for (a) no protection, (b) full predictor flush, and (c)
/// CONTEXT_HASH target encryption. The paper's claim: encryption gives
/// "improved security with minimal performance impact" because only
/// indirect/RAS targets are lost, while a flush retrains everything.
pub fn security_policy_costs() -> Vec<(&'static str, f64)> {
    use exynos_secure::context::ContextId;
    use exynos_trace::gen::web::{WebParams, WebWorkload};
    #[derive(Clone, Copy, PartialEq)]
    enum Policy {
        None,
        Flush,
        Encrypt,
    }
    let run = |policy: Policy| -> f64 {
        let mut cfg = FrontendConfig::m4();
        cfg.encrypt_targets = policy == Policy::Encrypt;
        let mut fe = FrontEnd::new(cfg);
        let mut gen = WebWorkload::new(
            &WebParams {
                functions: 300,
                dispatch_targets: 32,
                ..Default::default()
            },
            103,
            9,
        );
        // Train in context 0.
        for _ in 0..150_000 {
            let inst = gen.next_inst();
            let _ = fe.on_inst(&inst);
        }
        // Context switch (same program resumes — e.g. returning from
        // another process's timeslice).
        match policy {
            Policy::Flush => fe.set_context_flushing(ContextId::user(7, 0)),
            _ => fe.set_context(ContextId::user(7, 0)),
        }
        let before = *fe.stats();
        for _ in 0..30_000 {
            let inst = gen.next_inst();
            let _ = fe.on_inst(&inst);
        }
        let after = fe.stats();
        (after.total_mispredicts() - before.total_mispredicts()) as f64 * 1000.0
            / (after.instructions - before.instructions) as f64
    };
    vec![
        ("no protection (vulnerable)", run(Policy::None)),
        ("flush all predictors", run(Policy::Flush)),
        ("CONTEXT_HASH encryption", run(Policy::Encrypt)),
    ]
}
