//! Work-stealing parallel sweep executor.
//!
//! Every population sweep in this crate — `run_population`, the ablation
//! battery, the attack-rate sweep — is a cross product of fully
//! independent jobs (one `Simulator` per (generation, slice) pair). This
//! module runs such a job set on scoped OS threads with a shared atomic
//! job index: each worker repeatedly claims the next unclaimed index
//! (`fetch_add`), so fast jobs never wait behind slow ones and no
//! per-job thread spawn cost is paid.
//!
//! Determinism: results are tagged with their job index and re-assembled
//! in index order after the join, so the output vector is **bit-identical**
//! to a serial `(0..jobs).map(job)` loop regardless of thread count or
//! scheduling. Jobs must therefore be independent (no shared mutable
//! state) — which they are by construction: each builds its own
//! simulator from an owned config and a seeded generator.
//!
//! No external dependencies: `std::thread::scope` + `AtomicUsize` only.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the host's available
/// parallelism, or 1 if it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `jobs` independent jobs on up to `threads` scoped worker threads
/// and return the results in job-index order.
///
/// `job(i)` is called exactly once for every `i in 0..jobs`, from some
/// worker thread. With `threads <= 1` (or a single job) the jobs run
/// serially on the calling thread — the parallel and serial paths
/// produce identical output.
///
/// # Panics
/// If a job panics, the panic is propagated to the caller after the
/// remaining workers finish their current jobs (scoped threads are
/// always joined).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let per_thread: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        claimed.push((i, job(i)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });

    // Re-assemble in job-index order: catalog order, independent of which
    // worker ran which job.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for (i, v) in per_thread.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| match v {
            Some(v) => v,
            // fetch_add hands out each index exactly once, so every slot
            // is filled; reaching here means the executor itself broke.
            None => panic!("sweep executor lost the result of job {i}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_job_set() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(257, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_indexed(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "job 7 panicked")]
    fn job_panics_propagate() {
        let _ = run_indexed(16, 4, |i| {
            if i == 7 {
                panic!("job 7 panicked");
            }
            i
        });
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
