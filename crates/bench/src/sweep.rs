//! Work-stealing parallel sweep executor.
//!
//! Every population sweep in this crate — `run_population`, the ablation
//! battery, the attack-rate sweep — is a cross product of fully
//! independent jobs (one `Simulator` per (generation, slice) pair). This
//! module runs such a job set on scoped OS threads with a shared atomic
//! job index: each worker repeatedly claims the next unclaimed index
//! (`fetch_add`), so fast jobs never wait behind slow ones and no
//! per-job thread spawn cost is paid.
//!
//! Determinism: results are tagged with their job index and re-assembled
//! in index order after the join, so the output vector is **bit-identical**
//! to a serial `(0..jobs).map(job)` loop regardless of thread count or
//! scheduling. Jobs must therefore be independent (no shared mutable
//! state) — which they are by construction: each builds its own
//! simulator from an owned config and a seeded generator.
//!
//! No external dependencies: `std::thread::scope` + `AtomicUsize` only.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of worker threads to use by default: the host's available
/// parallelism, or 1 if it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `jobs` independent jobs on up to `threads` scoped worker threads
/// and return the results in job-index order.
///
/// `job(i)` is called exactly once for every `i in 0..jobs`, from some
/// worker thread. With `threads <= 1` (or a single job) the jobs run
/// serially on the calling thread — the parallel and serial paths
/// produce identical output.
///
/// # Panics
/// If a job panics, the panic is propagated to the caller after the
/// remaining workers finish their current jobs (scoped threads are
/// always joined).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let per_thread: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        claimed.push((i, job(i)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });

    // Re-assemble in job-index order: catalog order, independent of which
    // worker ran which job.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for (i, v) in per_thread.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| match v {
            Some(v) => v,
            // fetch_add hands out each index exactly once, so every slot
            // is filled; reaching here means the executor itself broke.
            None => panic!("sweep executor lost the result of job {i}"),
        })
        .collect()
}

/// Fallible [`run_indexed`]: every job returns `Result<T, SimError>`,
/// and the sweep **short-circuits** on the first failure — workers stop
/// claiming new jobs once any job has erred, so a cancelled or poisoned
/// sweep does not burn the remaining cores on doomed work.
///
/// On success the results come back in job-index order, identical to
/// [`run_indexed`]. On failure the error with the lowest job index among
/// those actually observed is returned (with `threads <= 1` that is
/// exactly the first failing index; with more threads a later job may
/// fail first and suppress earlier indices that were never claimed).
pub fn run_indexed_result<T, F>(
    jobs: usize,
    threads: usize,
    job: F,
) -> Result<Vec<T>, exynos_core::SimError>
where
    T: Send,
    F: Fn(usize) -> Result<T, exynos_core::SimError> + Sync,
{
    if jobs == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        let mut out = Vec::with_capacity(jobs);
        for i in 0..jobs {
            out.push(job(i)?);
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let per_thread: Vec<Vec<(usize, Result<T, exynos_core::SimError>)>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut claimed = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs {
                                break;
                            }
                            let r = job(i);
                            if r.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            claimed.push((i, r));
                        }
                        claimed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    let mut first_err: Option<(usize, exynos_core::SimError)> = None;
    for (i, r) in per_thread.into_iter().flatten() {
        match r {
            Ok(v) => slots[i] = Some(v),
            Err(e) => {
                if first_err.as_ref().map_or(true, |(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| match v {
            Some(v) => Ok(v),
            // Every index was claimed exactly once and none erred, so
            // every slot is filled; reaching here means the executor
            // itself broke.
            None => panic!("sweep executor lost the result of job {i}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_job_set() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(257, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_indexed(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "job 7 panicked")]
    fn job_panics_propagate() {
        let _ = run_indexed(16, 4, |i| {
            if i == 7 {
                panic!("job 7 panicked");
            }
            i
        });
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    fn boom(i: usize) -> exynos_core::SimError {
        exynos_core::SimError::Config { param: "test.job", detail: format!("job {i} failed") }
    }

    #[test]
    fn result_sweep_matches_infallible_on_success() {
        for threads in [1, 2, 8] {
            let out = run_indexed_result(50, threads, |i| Ok(i * 3)).unwrap();
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn result_sweep_serial_returns_first_error_and_short_circuits() {
        let calls = AtomicU64::new(0);
        let err = run_indexed_result(100, 1, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i >= 7 { Err(boom(i)) } else { Ok(i) }
        })
        .unwrap_err();
        assert!(format!("{err}").contains("job 7 failed"), "got {err}");
        assert_eq!(calls.load(Ordering::Relaxed), 8, "jobs after the failure must not run");
    }

    #[test]
    fn result_sweep_parallel_stops_claiming_after_a_failure() {
        let calls = AtomicU64::new(0);
        let err = run_indexed_result(10_000, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 { Err(boom(i)) } else { Ok(i) }
        })
        .unwrap_err();
        assert!(matches!(err, exynos_core::SimError::Config { .. }), "got {err}");
        assert!(
            calls.load(Ordering::Relaxed) < 10_000,
            "workers kept claiming jobs after the sweep failed"
        );
    }

    #[test]
    fn result_sweep_empty_job_set() {
        let out: Result<Vec<u32>, _> = run_indexed_result(0, 8, |_| unreachable!());
        assert!(out.unwrap().is_empty());
    }
}
