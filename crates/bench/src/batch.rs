//! Batched lockstep sweep engine.
//!
//! A population sweep runs every generation (M1..M6) over the *same*
//! workload slice, and trace generators are pure functions of
//! `(SliceSpec, seed)` — so all members of one (slice) group consume an
//! identical instruction stream. The scalar engine regenerates that
//! stream once per member; a [`PopulationBatch`] decodes each chunk of
//! records **once** and steps every member over the shared slice of
//! decoded records, amortizing generation/decode across the group.
//!
//! Correctness is anchored on a simple identity: simulators share no
//! mutable state, and feeding each member the exact record sequence it
//! would have generated itself — in chunk-major, member-minor order —
//! performs the very same `Simulator::step` calls the scalar path does,
//! in the same per-member order. Results are therefore **bit-identical**
//! to the scalar engine for any member count and chunk size; the
//! `batch_determinism` integration test and the `bench` subcommand's
//! hard gate both assert it.
//!
//! The lockstep invariant also makes the members' *architectural*
//! predictor inputs (global/path history) identical at every step, which
//! is what the structure-of-arrays probe paths in the component crates
//! exploit: [`exynos_branch::shp::predict_batch`] computes one row-index
//! set per SHP geometry group and reuses it for every member's
//! dot-product. [`PopulationBatch::probe`] bundles those batch probes.

use exynos_branch::btb::BtbEntry;
use exynos_branch::shp::ShpPrediction;
use exynos_branch::ubtb::UbtbPrediction;
use exynos_core::batch::{CachedStream, InstChunk, CHUNK_LEN};
use exynos_core::sim::{Simulator, SliceMeasure, SliceResult};
use exynos_core::SimError;
use exynos_trace::{Inst, SlicePlan, TraceError, TraceGen};
use std::ops::Range;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// A same-trace group of simulators advanced in lockstep over one shared
/// decoded record stream.
#[derive(Debug, Default)]
pub struct PopulationBatch {
    members: Vec<Simulator>,
    chunk: InstChunk,
}

impl PopulationBatch {
    /// An empty batch; add members with [`PopulationBatch::push`].
    pub fn new() -> PopulationBatch {
        PopulationBatch { members: Vec::new(), chunk: InstChunk::new() }
    }

    /// Add a member. Members must all be fed the same trace — the caller
    /// guarantees they belong to the same (slice, seed) group.
    pub fn push(&mut self, sim: Simulator) {
        self.members.push(sim);
    }

    /// Number of members (the batch width).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the batch has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Borrow the members, in insertion order.
    pub fn members(&self) -> &[Simulator] {
        &self.members
    }

    /// Take the members back out, in insertion order.
    pub fn into_members(self) -> Vec<Simulator> {
        self.members
    }

    /// Advance every member `n` instructions in lockstep: refill the
    /// shared chunk from `gen` (at most [`CHUNK_LEN`] records), then run
    /// each member over the decoded slice. Per member this performs
    /// exactly the `step` sequence a private generator would have.
    pub fn run_lockstep(&mut self, gen: &mut dyn TraceGen, n: u64) -> Result<(), SimError> {
        let mut rem = n;
        while rem > 0 {
            let take = rem.min(CHUNK_LEN as u64) as usize;
            self.chunk.refill(gen, take);
            for sim in &mut self.members {
                sim.run_block(self.chunk.as_slice())?;
            }
            rem -= take as u64;
        }
        Ok(())
    }

    /// Lockstep equivalent of every member running
    /// `run_slice(own_gen, plan)` over a freshly seeded copy of the same
    /// generator: warmup in lockstep, snapshot each member's measurement
    /// baseline, detail in lockstep, then derive one [`SliceResult`] per
    /// member (member order). Bit-identical to the scalar path.
    pub fn run_slice_lockstep(
        &mut self,
        gen: &mut dyn TraceGen,
        plan: SlicePlan,
    ) -> Result<Vec<SliceResult>, SimError> {
        self.run_lockstep(gen, plan.warmup)?;
        let measures: Vec<SliceMeasure> =
            self.members.iter().map(Simulator::measure_begin).collect();
        self.run_lockstep(gen, plan.detail)?;
        Ok(self
            .members
            .iter()
            .zip(&measures)
            .map(|(s, m)| s.measure_end(m))
            .collect())
    }

    /// Cached equivalent of [`PopulationBatch::run_lockstep`]: advance
    /// every member `n` instructions over blocks drawn through the shared
    /// chunk cache. Per member this performs exactly the same `step`
    /// sequence — block granularity (which differs from the uncached
    /// path near warmup boundaries, since cached blocks never cross
    /// canonical chunk edges) is invisible to results because
    /// `run_block` is a plain per-record step loop.
    pub fn run_lockstep_cached(
        &mut self,
        stream: &mut CachedStream,
        n: u64,
    ) -> Result<(), SimError> {
        let mut rem = n;
        while rem > 0 {
            let take = rem.min(CHUNK_LEN as u64) as usize;
            let (chunk, range) = stream.next_block(take).map_err(SimError::from)?;
            let block = &chunk[range];
            for sim in &mut self.members {
                sim.run_block(block)?;
            }
            rem -= block.len() as u64;
        }
        Ok(())
    }

    /// Cached (and optionally pipelined) equivalent of
    /// [`PopulationBatch::run_slice_lockstep`].
    ///
    /// * `pipelined = false` — interleaved-on-miss: blocks are pulled
    ///   through the cache inline; a miss materializes on the consumer
    ///   thread. The right mode for single-core hosts.
    /// * `pipelined = true` — double-buffered: a scoped producer thread
    ///   pulls block k+1 through the cache while the members step block
    ///   k (a bounded rendezvous channel of depth 1 is the double
    ///   buffer). Consumer wait time is recorded to the cache's
    ///   `pipeline_stall` samples.
    ///
    /// Both modes feed every member the identical record sequence the
    /// uncached lockstep path would, splitting precisely at the
    /// warmup/detail boundary for `measure_begin`, so results stay
    /// bit-identical for any cache budget including zero.
    pub fn run_slice_cached(
        &mut self,
        stream: &mut CachedStream,
        plan: SlicePlan,
        pipelined: bool,
    ) -> Result<Vec<SliceResult>, SimError> {
        if !pipelined {
            self.run_lockstep_cached(stream, plan.warmup)?;
            let measures: Vec<SliceMeasure> =
                self.members.iter().map(Simulator::measure_begin).collect();
            self.run_lockstep_cached(stream, plan.detail)?;
            return Ok(self
                .members
                .iter()
                .zip(&measures)
                .map(|(s, m)| s.measure_end(m))
                .collect());
        }
        self.run_slice_pipelined(stream, plan)
    }

    /// The double-buffered producer/consumer path behind
    /// [`PopulationBatch::run_slice_cached`].
    fn run_slice_pipelined(
        &mut self,
        stream: &mut CachedStream,
        plan: SlicePlan,
    ) -> Result<Vec<SliceResult>, SimError> {
        type Block = Result<(Arc<Vec<Inst>>, Range<usize>), TraceError>;
        let total = plan.warmup + plan.detail;
        let cache = Arc::clone(stream.cache());
        let mut measures: Option<Vec<SliceMeasure>> = None;
        if plan.warmup == 0 {
            measures = Some(self.members.iter().map(Simulator::measure_begin).collect());
        }
        let members = &mut self.members;
        let run = std::thread::scope(|scope| -> Result<(), SimError> {
            let (tx, rx) = mpsc::sync_channel::<Block>(1);
            scope.spawn(move || {
                let mut rem = total;
                while rem > 0 {
                    let take = rem.min(CHUNK_LEN as u64) as usize;
                    match stream.next_block(take) {
                        Ok((chunk, range)) => {
                            rem -= range.len() as u64;
                            if tx.send(Ok((chunk, range))).is_err() {
                                return; // consumer bailed (error path)
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            });
            let mut done = 0u64;
            while done < total {
                let wait = Instant::now();
                let block = match rx.recv() {
                    Ok(b) => b,
                    // Producer gone without delivering: its error (if
                    // any) was already sent; a clean disconnect here
                    // means counts disagreed, which the loop bound
                    // makes unreachable — treat as a typed trace error.
                    Err(_) => {
                        return Err(SimError::from(TraceError::program(
                            "pipeline",
                            "producer stopped early",
                        )))
                    }
                };
                cache.record_stall(wait.elapsed().as_micros() as u64);
                let (chunk, range) = block.map_err(SimError::from)?;
                let mut block = &chunk[range];
                // Split mid-block at the warmup/detail boundary so the
                // measurement baseline lands on the same instruction it
                // does in every other engine path.
                if measures.is_none() && done + block.len() as u64 >= plan.warmup {
                    let split = (plan.warmup - done) as usize;
                    let (head, tail) = block.split_at(split);
                    for sim in members.iter_mut() {
                        sim.run_block(head)?;
                    }
                    done += split as u64;
                    measures =
                        Some(members.iter().map(Simulator::measure_begin).collect());
                    block = tail;
                }
                for sim in members.iter_mut() {
                    sim.run_block(block)?;
                }
                done += block.len() as u64;
            }
            Ok(())
        });
        run?;
        let measures = match measures {
            Some(m) => m,
            // total >= warmup guarantees the boundary was crossed.
            None => self.members.iter().map(Simulator::measure_begin).collect(),
        };
        Ok(self
            .members
            .iter()
            .zip(&measures)
            .map(|(s, m)| s.measure_end(m))
            .collect())
    }

    /// One batched, read-only probe of every member's hot predictor and
    /// cache state at (`pc`, `addr`): SHP direction (neutral bias),
    /// BTB hierarchy, µBTB, L1D tag array and µOC block array, each
    /// through its structure-of-arrays `*_batch` path. Results land in
    /// `out` in member order; `out`'s buffers are reused across calls.
    pub fn probe(&self, pc: u64, addr: u64, out: &mut BatchProbe) {
        let shps: Vec<&exynos_branch::shp::Shp> =
            self.members.iter().map(|s| s.frontend().shp()).collect();
        out.biases.clear();
        out.biases.resize(shps.len(), 0);
        match self.members.first() {
            // Lockstep members carry identical architectural history, so
            // the group shares the lead member's.
            Some(lead) => {
                let (ghist, phist) = lead.frontend().histories();
                exynos_branch::shp::predict_batch(&shps, pc, &out.biases, ghist, phist, &mut out.shp);
            }
            None => out.shp.clear(),
        }
        let btbs: Vec<&exynos_branch::btb::BtbHierarchy> =
            self.members.iter().map(|s| s.frontend().btb()).collect();
        exynos_branch::btb::BtbHierarchy::probe_batch(&btbs, pc, &mut out.btb);
        let ubtbs: Vec<&exynos_branch::ubtb::MicroBtb> =
            self.members.iter().map(|s| s.frontend().ubtb()).collect();
        exynos_branch::ubtb::MicroBtb::probe_batch(&ubtbs, pc, &mut out.ubtb);
        let l1ds: Vec<&exynos_mem::Cache> =
            self.members.iter().map(|s| s.memsys().l1d()).collect();
        exynos_mem::Cache::probe_batch(&l1ds, addr, &mut out.l1d);
        let uocs: Vec<Option<&exynos_uoc::Uoc>> = self.members.iter().map(|s| s.uoc()).collect();
        exynos_uoc::Uoc::probe_batch(&uocs, pc, &mut out.uoc);
    }
}

/// One batched probe outcome across every member, member order. The
/// vectors are scratch buffers reused across [`PopulationBatch::probe`]
/// calls.
#[derive(Debug, Default)]
pub struct BatchProbe {
    /// SHP direction prediction per member (probed with a neutral bias).
    pub shp: Vec<ShpPrediction>,
    /// BTB hierarchy hit per member.
    pub btb: Vec<Option<BtbEntry>>,
    /// µBTB prediction per member.
    pub ubtb: Vec<UbtbPrediction>,
    /// L1D tag-array hit per member.
    pub l1d: Vec<bool>,
    /// µOC block presence per member (false for pre-M5 members).
    pub uoc: Vec<bool>,
    biases: Vec<i8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::must;
    use exynos_core::builder::SimBuilder;
    use exynos_core::config::CoreConfig;
    use exynos_trace::standard_suite;

    #[test]
    fn lockstep_matches_scalar_across_generations() {
        let suite = standard_suite(1);
        let slice = &suite[0];
        let plan = SlicePlan::new(700, 900);
        let gens = CoreConfig::all_generations();
        let mut batch = PopulationBatch::new();
        for cfg in &gens {
            batch.push(must(SimBuilder::config(cfg.clone()).build()));
        }
        let mut shared = slice.build().unwrap();
        let batched = must(batch.run_slice_lockstep(&mut *shared, plan));
        for (cfg, b) in gens.iter().zip(&batched) {
            let mut sim = must(SimBuilder::config(cfg.clone()).build());
            let mut gen = slice.build().unwrap();
            let scalar = must(sim.run_slice(&mut *gen, plan));
            assert_eq!(format!("{scalar:?}"), format!("{b:?}"), "{}", cfg.gen.name());
        }
    }

    #[test]
    fn probe_covers_every_member() {
        let gens = CoreConfig::all_generations();
        let mut batch = PopulationBatch::new();
        for cfg in &gens {
            batch.push(must(SimBuilder::config(cfg.clone()).build()));
        }
        let suite = standard_suite(1);
        let mut gen = suite[0].build().unwrap();
        must(batch.run_lockstep(&mut *gen, 2_000));
        let mut probe = BatchProbe::default();
        batch.probe(0x4000, 0x8000, &mut probe);
        assert_eq!(probe.shp.len(), 6);
        assert_eq!(probe.btb.len(), 6);
        assert_eq!(probe.ubtb.len(), 6);
        assert_eq!(probe.l1d.len(), 6);
        assert_eq!(probe.uoc.len(), 6);
    }

    #[test]
    fn cached_and_pipelined_match_uncached_lockstep() {
        use exynos_core::batch::ChunkCache;
        let suite = standard_suite(1);
        let slice = &suite[1];
        let plan = SlicePlan::new(700, 900);
        let gens = CoreConfig::all_generations();
        let build = || {
            let mut b = PopulationBatch::new();
            for cfg in &gens {
                b.push(must(SimBuilder::config(cfg.clone()).build()));
            }
            b
        };
        let mut reference = build();
        let mut shared = slice.build().unwrap();
        let want: Vec<String> = must(reference.run_slice_lockstep(&mut *shared, plan))
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        for budget in [None, Some(0), Some(64 * 1024)] {
            for pipelined in [false, true] {
                let cache = Arc::new(ChunkCache::with_budget(budget));
                let mut stream = CachedStream::for_slice(Arc::clone(&cache), slice);
                let mut batch = build();
                let got: Vec<String> = must(batch.run_slice_cached(&mut stream, plan, pipelined))
                    .iter()
                    .map(|r| format!("{r:?}"))
                    .collect();
                assert_eq!(want, got, "budget {budget:?} pipelined {pipelined}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut batch = PopulationBatch::new();
        assert!(batch.is_empty());
        let suite = standard_suite(1);
        let mut gen = suite[0].build().unwrap();
        let out = must(batch.run_slice_lockstep(&mut *gen, SlicePlan::new(100, 100)));
        assert!(out.is_empty());
        let mut probe = BatchProbe::default();
        batch.probe(0x4000, 0x8000, &mut probe);
        assert!(probe.shp.is_empty());
    }
}
