//! The bench-side [`JobRunner`]: routes service-tier jobs onto the
//! existing sweep machinery.
//!
//! Sweep jobs without robustness overrides share warm checkpoint pools
//! across requests, keyed by `(scale, warmup)` — the first request of a
//! shape pays the warmup, every later one forks the in-memory images.
//! Jobs *with* overrides (chaos plans, stall injection, watchdog or
//! decode knobs) bypass the shared pools: their simulators carry fault
//! injectors that must start from cold state to be reproducible.
//!
//! Every simulator built here carries the job's
//! [`CancelToken`](exynos_core::cancel::CancelToken), so the engine's
//! deadline / cancel machinery reaches into the innermost step loop.
//! Every failure path is a typed [`SimError`]; this runner never
//! panics on job input.

use crate::experiments::{self as exp, SliceRecord, WarmPool};
use crate::sweep;
use exynos_core::batch::{CachedStream, ChunkCache, ChunkCacheStats};
use exynos_core::builder::SimBuilder;
use exynos_core::cancel::CancelToken;
use exynos_core::config::{CoreConfig, Generation};
use exynos_core::error::SimError;
use exynos_core::fault::FaultPlan;
use exynos_core::sim::Simulator;
use exynos_service::job::{JobCtx, JobKind, JobRunner, JobSpec};
use exynos_service::json;
use exynos_telemetry::{SpanId, Telemetry, TelemetryConfig};
use exynos_trace::{standard_suite, SlicePlan};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Byte budget for the runner's shared chunk cache: enough to keep a
/// whole small-scale sweep's decoded chunks resident across jobs while
/// bounding a long-lived server's footprint.
const SERVICE_CACHE_BYTES: u64 = 64 << 20;

/// Executes service jobs on the bench crate's experiment engine.
#[derive(Debug)]
pub struct BenchRunner {
    /// Warm pools shared across requests, keyed `(scale, warmup)`.
    pools: Mutex<HashMap<(usize, u64), Arc<WarmPool>>>,
    /// Thread count used when building a shared pool.
    pool_threads: usize,
    /// Decoded trace chunks shared across every job this runner serves.
    chunks: Arc<ChunkCache>,
}

fn lock_pools(
    m: &Mutex<HashMap<(usize, u64), Arc<WarmPool>>>,
) -> std::sync::MutexGuard<'_, HashMap<(usize, u64), Arc<WarmPool>>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl BenchRunner {
    /// A runner whose shared warm pools are built on `pool_threads`
    /// worker threads.
    pub fn new(pool_threads: usize) -> BenchRunner {
        BenchRunner {
            pools: Mutex::new(HashMap::new()),
            pool_threads: pool_threads.max(1),
            chunks: Arc::new(ChunkCache::with_budget(Some(SERVICE_CACHE_BYTES))),
        }
    }

    /// Number of warm pools currently cached.
    pub fn pool_count(&self) -> usize {
        lock_pools(&self.pools).len()
    }

    /// The runner's cross-job chunk cache.
    pub fn chunk_cache(&self) -> &Arc<ChunkCache> {
        &self.chunks
    }

    /// Fetch or build the shared pool for `(scale, warmup)`. The build
    /// runs outside the cache lock so a slow warmup cannot block jobs
    /// of other shapes; if two jobs race, the first insert wins and the
    /// loser's identical pool is dropped.
    fn pool(
        &self,
        scale: usize,
        warmup: u64,
        cancel: &CancelToken,
    ) -> Result<Arc<WarmPool>, SimError> {
        if let Some(p) = lock_pools(&self.pools).get(&(scale, warmup)) {
            return Ok(Arc::clone(p));
        }
        let built = Arc::new(exp::try_build_warm_pool(scale, warmup, self.pool_threads, cancel)?);
        let mut pools = lock_pools(&self.pools);
        Ok(Arc::clone(pools.entry((scale, warmup)).or_insert(built)))
    }

    fn run_sweep(
        &self,
        spec: &JobSpec,
        scale: usize,
        warmup: u64,
        detail: u64,
        threads: usize,
        ctx: &JobCtx,
    ) -> Result<String, SimError> {
        if scale == 0 {
            return Err(SimError::Config {
                param: "job.scale",
                detail: "sweep scale must be >= 1".to_owned(),
            });
        }
        let cancel = &ctx.cancel;
        let suite = standard_suite(scale);
        let gens = CoreConfig::all_generations();
        let per_gen = suite.len();
        let jobs = gens.len() * per_gen;
        let records: Vec<SliceRecord> = if spec.has_overrides() {
            // Cold path: each simulator starts from reset with the
            // spec's injectors attached. A failure (cancel, deadline,
            // injected fault) short-circuits the remaining jobs.
            sweep::run_indexed_result(jobs, threads, |i| {
                let cfg = &gens[i / per_gen];
                let slice = &suite[i % per_gen];
                let mut sim = build_sim(cfg.clone(), spec, cancel)?;
                let mut gen = slice.build()?;
                let sspan = slice_span(ctx, i, &slice.name, cfg.gen.name());
                let r = sim.run_slice(&mut *gen, SlicePlan::new(warmup, detail));
                end_slice_span(ctx, sspan, &sim);
                let r = r?;
                Ok(record(slice.name.clone(), cfg.gen.name(), &r))
            })?
        } else {
            let pool = {
                let fetch = ctx.spans.start("warm_pool_fetch", Some(ctx.attempt));
                ctx.spans.attr_u64(fetch, "scale", scale as u64);
                ctx.spans.attr_u64(fetch, "warmup", warmup);
                let pool = self.pool(scale, warmup, cancel);
                ctx.spans.end(fetch);
                pool?
            };
            sweep::run_indexed_result(jobs, threads, |i| {
                let cfg = &gens[i / per_gen];
                let slice = &suite[i % per_gen];
                // Fork the resident warmed simulator instead of decoding
                // the checkpoint image; by the snapshot invariant the
                // clone behaves identically.
                let mut sim = pool.resident(i);
                sim.set_cancel_token(cancel.clone());
                let mut batch = crate::batch::PopulationBatch::new();
                batch.push(sim);
                // Detail records come from the shared chunk cache: the
                // first job of a shape decodes them, every later job
                // (and every other generation of this one) hits.
                let mut stream = CachedStream::for_slice(Arc::clone(&self.chunks), slice);
                stream.skip(pool.warmup());
                let sspan = slice_span(ctx, i, &slice.name, cfg.gen.name());
                let r = batch.run_slice_cached(&mut stream, SlicePlan::new(0, detail), false);
                end_slice_span(ctx, sspan, &batch.members()[0]);
                let r = r?;
                let res = r.first().ok_or_else(|| SimError::Config {
                    param: "job.batch",
                    detail: "width-1 batch returned no result".to_owned(),
                })?;
                Ok(record(slice.name.clone(), cfg.gen.name(), res))
            })?
        };
        Ok(sweep_payload(scale, warmup, detail, &records))
    }

    fn run_program(
        &self,
        spec: &JobSpec,
        name: &str,
        warmup: u64,
        detail: u64,
        ctx: &JobCtx,
    ) -> Result<String, SimError> {
        // Resolve the program against the embedded corpus; an unknown
        // name or a program that fails to assemble surfaces as a typed
        // `SimError::Config` via `From<TraceError>` — never a panic.
        let slices =
            exynos_asm::corpus_slices(SlicePlan::default(), exp::PROGRAM_REGION_BASE)?;
        let slice = slices
            .iter()
            .find(|s| s.name == format!("program/{name}"))
            .ok_or_else(|| SimError::Config {
                param: "job.program",
                detail: format!(
                    "unknown corpus program {name:?} (available: {})",
                    exynos_asm::CORPUS.map(|(n, _)| n).join(", ")
                ),
            })?;
        let cancel = &ctx.cancel;
        let gens = CoreConfig::all_generations();
        let mut batch = crate::batch::PopulationBatch::new();
        for cfg in &gens {
            batch.push(build_sim(cfg.clone(), spec, cancel)?);
        }
        // Program records come from the shared chunk cache keyed on the
        // program's content fingerprint, so resubmitting the same
        // program skips re-assembly and re-decode entirely.
        let mut stream = CachedStream::for_slice(Arc::clone(&self.chunks), slice);
        let sspan = slice_span(ctx, 0, &slice.name, "all");
        let r = batch.run_slice_cached(&mut stream, SlicePlan::new(warmup, detail), false);
        if Telemetry::ACTIVE {
            ctx.spans.end(sspan);
        }
        let results = r?;
        let records: Vec<SliceRecord> = gens
            .iter()
            .zip(&results)
            .map(|(cfg, res)| record(slice.name.clone(), cfg.gen.name(), res))
            .collect();
        Ok(program_payload(name, warmup, detail, &records))
    }

    fn run_instrumented(
        &self,
        spec: &JobSpec,
        generation: &str,
        (warmup, detail, epoch): (u64, u64, u64),
        trace: bool,
        ctx: &JobCtx,
    ) -> Result<String, SimError> {
        if !Telemetry::ACTIVE {
            return Err(SimError::Config {
                param: "telemetry",
                detail: "server built without the telemetry feature".to_owned(),
            });
        }
        if epoch == 0 {
            return Err(SimError::Config {
                param: "job.epoch",
                detail: "epoch length must be >= 1".to_owned(),
            });
        }
        let cfg = CoreConfig::for_generation(parse_generation(generation)?);
        let mut sim = build_sim(cfg, spec, &ctx.cancel)?;
        let event_capacity = if trace { 1 << 18 } else { 1 << 16 };
        let mut tel = Telemetry::new(TelemetryConfig { epoch_len: epoch, event_capacity });
        let suite = standard_suite(1);
        let slice = &suite[0];
        let mut gen = slice.build()?;
        let sspan = slice_span(ctx, 0, &slice.name, generation);
        let r = sim.run_slice_with(&mut *gen, SlicePlan::new(warmup, detail), &mut tel);
        end_slice_span(ctx, sspan, &sim);
        r?;
        sim.sample_telemetry(&mut tel);
        tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
        Ok(if trace { tel.events_jsonl() } else { tel.metrics_jsonl() })
    }

    fn run_checkpoint(
        &self,
        spec: &JobSpec,
        generation: &str,
        warmup: u64,
        ctx: &JobCtx,
    ) -> Result<String, SimError> {
        let cfg = CoreConfig::for_generation(parse_generation(generation)?);
        let mut sim = build_sim(cfg, spec, &ctx.cancel)?;
        let suite = standard_suite(1);
        let slice = &suite[0];
        let mut gen = slice.build()?;
        let sspan = slice_span(ctx, 0, &slice.name, generation);
        let r = sim.run_warmup(&mut *gen, warmup);
        end_slice_span(ctx, sspan, &sim);
        r?;
        let image = sim.checkpoint();
        let mut out = String::from("{");
        json::push_key(&mut out, true, "kind");
        json::push_str(&mut out, "checkpoint");
        json::push_key(&mut out, false, "gen");
        json::push_str(&mut out, generation);
        json::push_key(&mut out, false, "warmup");
        json::push_u64(&mut out, warmup);
        json::push_key(&mut out, false, "instructions");
        json::push_u64(&mut out, sim.stats().instructions);
        json::push_key(&mut out, false, "bytes");
        json::push_u64(&mut out, image.len() as u64);
        json::push_key(&mut out, false, "fnv");
        json::push_str(&mut out, &format!("{:016x}", fnv1a(&image)));
        out.push('}');
        Ok(out)
    }
}

impl JobRunner for BenchRunner {
    fn run(&self, spec: &JobSpec, ctx: &JobCtx) -> Result<String, SimError> {
        match &spec.kind {
            JobKind::Sweep { scale, warmup, detail, threads } => {
                self.run_sweep(spec, *scale, *warmup, *detail, *threads, ctx)
            }
            JobKind::Metrics { generation, warmup, detail, epoch } => {
                self.run_instrumented(spec, generation, (*warmup, *detail, *epoch), false, ctx)
            }
            JobKind::Trace { generation, warmup, detail, epoch } => {
                self.run_instrumented(spec, generation, (*warmup, *detail, *epoch), true, ctx)
            }
            JobKind::Checkpoint { generation, warmup } => {
                self.run_checkpoint(spec, generation, *warmup, ctx)
            }
            JobKind::Program { program, warmup, detail } => {
                self.run_program(spec, program, *warmup, *detail, ctx)
            }
        }
    }

    fn chunk_cache_stats(&self) -> ChunkCacheStats {
        self.chunks.stats()
    }

    fn take_pipeline_stalls(&self) -> Vec<u64> {
        self.chunks.take_stalls()
    }
}

/// Open a `slice[k]` span under the job's attempt span. The `format!`
/// is gated so disabled-telemetry builds pay nothing.
fn slice_span(ctx: &JobCtx, k: usize, slice: &str, gen: &str) -> SpanId {
    if !Telemetry::ACTIVE {
        return SpanId::default();
    }
    let s = ctx.spans.start(&format!("slice[{k}]"), Some(ctx.attempt));
    ctx.spans.attr_str(s, "slice", slice);
    ctx.spans.attr_str(s, "gen", gen);
    s
}

/// Close a slice span, attaching the simulator's last watchdog trip (if
/// any) so post-mortems carry the cycle/gap/rung that fired.
fn end_slice_span(ctx: &JobCtx, s: SpanId, sim: &Simulator) {
    if Telemetry::ACTIVE {
        if let Some(t) = sim.watchdog_report() {
            ctx.spans.attr_u64(s, "watchdog_cycle", t.cycle);
            ctx.spans.attr_u64(s, "watchdog_gap", t.gap);
            ctx.spans.attr_u64(s, "watchdog_rung", t.rung as u64);
        }
        ctx.spans.end(s);
    }
}

/// Parse a protocol generation name (`"m1"`..`"m6"`, case-insensitive)
/// into a [`Generation`], rejecting anything else with a typed error.
pub fn parse_generation(name: &str) -> Result<Generation, SimError> {
    match name.to_ascii_lowercase().as_str() {
        "m1" => Ok(Generation::M1),
        "m2" => Ok(Generation::M2),
        "m3" => Ok(Generation::M3),
        "m4" => Ok(Generation::M4),
        "m5" => Ok(Generation::M5),
        "m6" => Ok(Generation::M6),
        _ => Err(SimError::Config {
            param: "job.gen",
            detail: format!("unknown generation {name:?} (expected m1..m6)"),
        }),
    }
}

/// The spec's fault plan, if any knob is set. A chaos seed selects the
/// full chaos plan; stall knobs then override its stall schedule (or
/// stand alone on an otherwise-empty plan).
fn fault_plan(spec: &JobSpec) -> Option<FaultPlan> {
    if spec.chaos_seed.is_none() && spec.stall_every == 0 && spec.stall_cycles == 0 {
        return None;
    }
    let mut plan = match spec.chaos_seed {
        Some(seed) => FaultPlan::chaos(seed),
        None => FaultPlan::none(),
    };
    if spec.stall_every != 0 || spec.stall_cycles != 0 {
        plan.stall_every = spec.stall_every;
        plan.stall_cycles = spec.stall_cycles;
    }
    Some(plan)
}

/// One simulator for `cfg` carrying every override in `spec` plus the
/// job's cancel token. Inconsistent knobs (e.g. a stall period with no
/// magnitude) surface as typed `SimError::Config` from the builder.
fn build_sim(cfg: CoreConfig, spec: &JobSpec, cancel: &CancelToken) -> Result<Simulator, SimError> {
    let mut b = SimBuilder::config(cfg).cancel_token(cancel.clone());
    if let Some(plan) = fault_plan(spec) {
        b = b.fault_profile(plan);
    }
    if let Some((threshold, recoveries)) = spec.watchdog {
        b = b.watchdog(threshold, recoveries);
    }
    if spec.strict_decode {
        b = b.strict_decode(true);
    }
    b.build()
}

fn record(name: String, gen: &'static str, r: &exynos_core::sim::SliceResult) -> SliceRecord {
    SliceRecord { name, gen, ipc: r.ipc, mpki: r.mpki, load_latency: r.avg_load_latency }
}

/// Deterministic sweep payload: job shape plus one record per
/// (generation, slice), floats in shortest-round-trip form so a re-run
/// after crash recovery is byte-identical.
fn sweep_payload(scale: usize, warmup: u64, detail: u64, records: &[SliceRecord]) -> String {
    let mut out = String::from("{");
    json::push_key(&mut out, true, "kind");
    json::push_str(&mut out, "sweep");
    json::push_key(&mut out, false, "scale");
    json::push_u64(&mut out, scale as u64);
    json::push_key(&mut out, false, "warmup");
    json::push_u64(&mut out, warmup);
    json::push_key(&mut out, false, "detail");
    json::push_u64(&mut out, detail);
    json::push_key(&mut out, false, "jobs");
    json::push_u64(&mut out, records.len() as u64);
    json::push_key(&mut out, false, "records");
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json::push_key(&mut out, true, "slice");
        json::push_str(&mut out, &r.name);
        json::push_key(&mut out, false, "gen");
        json::push_str(&mut out, r.gen);
        json::push_key(&mut out, false, "ipc");
        json::push_f64(&mut out, r.ipc);
        json::push_key(&mut out, false, "mpki");
        json::push_f64(&mut out, r.mpki);
        json::push_key(&mut out, false, "load_latency");
        json::push_f64(&mut out, r.load_latency);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Deterministic program-job payload: the job shape plus one record per
/// generation, floats in shortest-round-trip form (same rationale as
/// [`sweep_payload`]).
fn program_payload(name: &str, warmup: u64, detail: u64, records: &[SliceRecord]) -> String {
    let mut out = String::from("{");
    json::push_key(&mut out, true, "kind");
    json::push_str(&mut out, "program");
    json::push_key(&mut out, false, "program");
    json::push_str(&mut out, name);
    json::push_key(&mut out, false, "warmup");
    json::push_u64(&mut out, warmup);
    json::push_key(&mut out, false, "detail");
    json::push_u64(&mut out, detail);
    json::push_key(&mut out, false, "records");
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json::push_key(&mut out, true, "gen");
        json::push_str(&mut out, r.gen);
        json::push_key(&mut out, false, "ipc");
        json::push_f64(&mut out, r.ipc);
        json::push_key(&mut out, false, "mpki");
        json::push_f64(&mut out, r.mpki);
        json::push_key(&mut out, false, "load_latency");
        json::push_f64(&mut out, r.load_latency);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> JobSpec {
        JobSpec::plain(JobKind::Sweep { scale: 1, warmup: 200, detail: 300, threads: 1 })
    }

    #[test]
    fn warm_sweep_matches_cold_reference() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let payload = runner.run(&quick_sweep(), &ctx).unwrap();
        assert_eq!(runner.pool_count(), 1, "plain sweep populates the shared pool");
        // Same spec again: served from the cached pool, byte-identical.
        let again = runner.run(&quick_sweep(), &ctx).unwrap();
        assert_eq!(payload, again);
        // Reference values from the cold experiment engine.
        let reference = exp::run_population_with_threads(1, 200, 300, 1);
        assert_eq!(payload, sweep_payload(1, 200, 300, &reference));
    }

    #[test]
    fn override_sweep_bypasses_the_pool() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let mut spec = quick_sweep();
        spec.chaos_seed = Some(0xC0FFEE);
        runner.run(&spec, &ctx).unwrap();
        assert_eq!(runner.pool_count(), 0, "override jobs must not share pools");
    }

    #[test]
    fn cancelled_job_returns_typed_error() {
        let runner = BenchRunner::new(1);
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = JobCtx::detached(cancel);
        let err = runner.run(&quick_sweep(), &ctx).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { deadline: false, .. }), "got {err}");
    }

    #[test]
    fn bad_generation_is_a_config_error() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let spec = JobSpec::plain(JobKind::Checkpoint { generation: "m9".to_owned(), warmup: 100 });
        let err = runner.run(&spec, &ctx).unwrap_err();
        assert!(matches!(err, SimError::Config { param: "job.gen", .. }), "got {err}");
    }

    #[test]
    fn inconsistent_stall_knobs_are_rejected() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let mut spec = quick_sweep();
        spec.stall_every = 100; // no stall_cycles: period with no magnitude
        let err = runner.run(&spec, &ctx).unwrap_err();
        assert!(matches!(err, SimError::Config { .. }), "got {err}");
    }

    #[test]
    fn program_job_is_deterministic_and_covers_every_generation() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let spec = JobSpec::plain(JobKind::Program {
            program: "nested_loops".to_owned(),
            warmup: 500,
            detail: 1_500,
        });
        let a = runner.run(&spec, &ctx).unwrap();
        let b = runner.run(&spec, &ctx).unwrap();
        assert_eq!(a, b);
        for g in ["M1", "M2", "M3", "M4", "M5", "M6"] {
            assert!(a.contains(&format!("\"gen\":\"{g}\"")), "missing {g}: {a}");
        }
    }

    #[test]
    fn repeated_program_job_hits_the_chunk_cache() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let spec = JobSpec::plain(JobKind::Program {
            program: "nested_loops".to_owned(),
            warmup: 500,
            detail: 1_500,
        });
        let a = runner.run(&spec, &ctx).unwrap();
        let after_first = runner.chunk_cache_stats();
        assert!(after_first.misses > 0, "first job decodes chunks: {after_first:?}");
        let b = runner.run(&spec, &ctx).unwrap();
        let after_second = runner.chunk_cache_stats();
        assert_eq!(a, b, "cache reuse must not perturb the payload");
        assert!(
            after_second.hits > after_first.hits,
            "second identical job must hit the shared cache: {after_first:?} -> {after_second:?}"
        );
    }

    #[test]
    fn unknown_program_is_a_typed_config_error() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let spec = JobSpec::plain(JobKind::Program {
            program: "no_such_kernel".to_owned(),
            warmup: 100,
            detail: 100,
        });
        let err = runner.run(&spec, &ctx).unwrap_err();
        assert!(matches!(err, SimError::Config { .. }), "got {err}");
    }

    #[test]
    fn checkpoint_payload_is_deterministic() {
        let runner = BenchRunner::new(1);
        let ctx = JobCtx::detached(CancelToken::new());
        let spec = JobSpec::plain(JobKind::Checkpoint { generation: "m6".to_owned(), warmup: 500 });
        let a = runner.run(&spec, &ctx).unwrap();
        let b = runner.run(&spec, &ctx).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"bytes\":"), "payload reports the image size: {a}");
    }
}
