//! # exynos-bench — the benchmark harness regenerating every table/figure
//!
//! [`experiments`] holds one function per table/figure of the paper's
//! evaluation; the `harness` binary prints them, and the Criterion benches
//! under `benches/` time the core kernels. [`batch`] is the lockstep
//! engine stepping whole same-trace population groups per decoded record
//! chunk. See `EXPERIMENTS.md` at the workspace root for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod batch;
pub mod experiments;
pub mod service_runner;
pub mod sweep;
