//! The table/figure harness: regenerates every table and figure of the
//! paper's evaluation from the simulator.
//!
//! ```text
//! cargo run --release -p exynos-bench --bin harness -- all
//! cargo run --release -p exynos-bench --bin harness -- fig9 --scale 4 --threads 8
//! cargo run --release -p exynos-bench --bin harness -- fig17 --csv fig17.csv
//! cargo run --release -p exynos-bench --bin harness -- bench --quick
//! ```
//!
//! Subcommands: table1 table2 table3 table4 fig1 fig4 fig5 fig7 fig8 fig9
//! fig10 fig14 fig15 fig16 fig17 uoc btb_ablation branchstats ablations
//! security_policies bench metrics trace checkpoint resume serve call
//! spans asm run all
//!
//! Program-driven traces (see DESIGN.md, "Assembler frontend &
//! program-driven traces"): `asm` inspects a program, `run` executes one
//! across the generations, and `--programs` mixes the embedded corpus
//! into the population sweep as `program/*` slices.
//!
//! ```text
//! cargo run --release -p exynos-bench --bin harness -- asm fib_recursive
//! cargo run --release -p exynos-bench --bin harness -- asm path/to/kernel.s
//! cargo run --release -p exynos-bench --bin harness -- run --program computed_goto --quick
//! cargo run --release -p exynos-bench --bin harness -- run --program kernel.s --gen m5
//! cargo run --release -p exynos-bench --bin harness -- fig9 --programs
//! ```
//!
//! Sweep-as-a-service (see DESIGN.md, "Service tier & failure model"):
//!
//! ```text
//! cargo run --release -p exynos-bench --bin harness -- serve --socket /tmp/ex.sock --journal jobs.wal &
//! cargo run --release -p exynos-bench --bin harness -- call '{"cmd":"submit","job":{"kind":"sweep"}}' --socket /tmp/ex.sock
//! cargo run --release -p exynos-bench --bin harness -- call '{"cmd":"result","id":1}' --socket /tmp/ex.sock
//! cargo run --release -p exynos-bench --bin harness -- call '{"cmd":"shutdown"}' --socket /tmp/ex.sock
//! ```
//!
//! Service observability (see DESIGN.md, "Span tracing & flight
//! recorder"): `spans ID` prints a served job's span tree as JSONL,
//! `spans` with no id prints the per-stage latency quantiles, and
//! `call metrics --prom` prints the ops registry in Prometheus text
//! exposition format. `serve --postmortem-dir DIR` makes the flight
//! recorder write post-mortem dumps there.
//!
//! ```text
//! cargo run --release -p exynos-bench --bin harness -- spans 1 --socket /tmp/ex.sock
//! cargo run --release -p exynos-bench --bin harness -- spans --socket /tmp/ex.sock
//! cargo run --release -p exynos-bench --bin harness -- call metrics --prom --socket /tmp/ex.sock
//! ```
//!
//! Checkpoint round trip (byte-identical telemetry across the two runs):
//!
//! ```text
//! cargo run --release -p exynos-bench --bin harness -- checkpoint warm.ckpt > a.jsonl
//! cargo run --release -p exynos-bench --bin harness -- resume warm.ckpt > b.jsonl
//! cmp a.jsonl b.jsonl
//! ```
//!
//! Telemetry (requires the default `telemetry` feature):
//!
//! ```text
//! cargo run --release -p exynos-bench --bin harness -- metrics --epoch 10000
//! cargo run --release -p exynos-bench --bin harness -- trace > events.jsonl
//! ```

use exynos_bench::experiments as exp;
use exynos_bench::sweep;
use exynos_branch::config::FrontendConfig;
use exynos_branch::indirect::IndirectConfig;
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;

/// Every recognized subcommand; anything else is a usage error.
const SUBCOMMANDS: &[&str] = &[
    "all", "table1", "table2", "table3", "table4", "fig1", "fig4", "fig5", "fig7", "fig8", "fig9",
    "fig10", "fig14", "fig15", "fig16", "fig17", "uoc", "btb_ablation", "branchstats", "ablations",
    "security_policies", "bench", "metrics", "trace", "checkpoint", "resume", "serve", "call",
    "spans", "asm", "run",
];

fn usage_error(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    eprintln!(
        "usage: harness [SUBCOMMAND] [FILE] [--scale N] [--csv PATH] [--threads N] [--epoch N] [--quick]"
    );
    eprintln!("               [--socket PATH] [--journal PATH] [--workers N] [--queue N]");
    eprintln!("               [--postmortem-dir DIR] [--prom] [--programs]");
    eprintln!("               [--program FILE|NAME] [--gen mN]");
    eprintln!("subcommands: {}", SUBCOMMANDS.join(" "));
    eprintln!("FILE is required by checkpoint/resume (the on-disk image path),");
    eprintln!("by call (the JSON request line, e.g. '{{\"cmd\":\"ping\"}}') and by asm");
    eprintln!("(an assembly file path or embedded corpus program name);");
    eprintln!("spans takes an optional job id (no id: latency quantiles);");
    eprintln!("run needs --program FILE|NAME (all generations; --gen mN for one)");
    std::process::exit(2);
}

/// Parsed command line: the subcommand plus its options, every value
/// validated up front (a malformed value is a hard usage error, never a
/// silent fallback).
struct Options {
    cmd: String,
    file: Option<String>,
    scale: usize,
    csv_path: Option<String>,
    threads: Option<usize>,
    epoch: u64,
    quick: bool,
    socket: String,
    journal: Option<String>,
    workers: usize,
    queue_cap: usize,
    postmortem_dir: Option<String>,
    prom: bool,
    program: Option<String>,
    gen: Option<String>,
    programs: bool,
}

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options {
        cmd: "all".to_string(),
        file: None,
        scale: 1,
        csv_path: None,
        threads: None,
        epoch: 10_000,
        quick: false,
        socket: "exynos.sock".to_string(),
        journal: None,
        workers: 2,
        queue_cap: 64,
        postmortem_dir: None,
        prom: false,
        program: None,
        gen: None,
        programs: false,
    };
    let mut saw_cmd = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.scale = n,
                Some(_) => usage_error("--scale expects a positive integer"),
                None => usage_error("--scale is missing its value"),
            },
            "--csv" => match it.next() {
                Some(v) if !v.starts_with("--") => opts.csv_path = Some(v.clone()),
                _ => usage_error("--csv is missing its path"),
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.threads = Some(n),
                Some(_) => usage_error("--threads expects a positive integer"),
                None => usage_error("--threads is missing its value"),
            },
            "--epoch" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => opts.epoch = n,
                Some(_) => usage_error("--epoch expects a positive integer"),
                None => usage_error("--epoch is missing its value"),
            },
            "--quick" => opts.quick = true,
            "--socket" => match it.next() {
                Some(v) if !v.starts_with("--") => opts.socket = v.clone(),
                _ => usage_error("--socket is missing its path"),
            },
            "--journal" => match it.next() {
                Some(v) if !v.starts_with("--") => opts.journal = Some(v.clone()),
                _ => usage_error("--journal is missing its path"),
            },
            "--workers" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.workers = n,
                Some(_) => usage_error("--workers expects a non-negative integer"),
                None => usage_error("--workers is missing its value"),
            },
            "--queue" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.queue_cap = n,
                Some(_) => usage_error("--queue expects a positive integer"),
                None => usage_error("--queue is missing its value"),
            },
            "--postmortem-dir" => match it.next() {
                Some(v) if !v.starts_with("--") => opts.postmortem_dir = Some(v.clone()),
                _ => usage_error("--postmortem-dir is missing its path"),
            },
            "--prom" => opts.prom = true,
            "--program" => match it.next() {
                Some(v) if !v.starts_with("--") => opts.program = Some(v.clone()),
                _ => usage_error("--program is missing its file path or corpus name"),
            },
            "--gen" => match it.next() {
                Some(v) if !v.starts_with("--") => opts.gen = Some(v.clone()),
                _ => usage_error("--gen is missing its generation name (m1..m6)"),
            },
            "--programs" => opts.programs = true,
            "--help" | "-h" => {
                println!(
                    "usage: harness [SUBCOMMAND] [--scale N] [--csv PATH] [--threads N] [--epoch N] [--quick]"
                );
                println!("subcommands: {}", SUBCOMMANDS.join(" "));
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown option '{flag}'"));
            }
            cmd if !saw_cmd => {
                if !SUBCOMMANDS.contains(&cmd) {
                    usage_error(&format!("unknown subcommand '{cmd}'"));
                }
                opts.cmd = cmd.to_string();
                saw_cmd = true;
            }
            path if matches!(opts.cmd.as_str(), "checkpoint" | "resume" | "call" | "spans" | "asm")
                && opts.file.is_none() =>
            {
                opts.file = Some(path.to_string());
            }
            extra => usage_error(&format!("unexpected argument '{extra}'")),
        }
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);
    let Options {
        cmd,
        file,
        scale,
        csv_path,
        threads,
        epoch,
        quick,
        socket,
        journal,
        workers,
        queue_cap,
        postmortem_dir,
        prom,
        program,
        gen,
        programs,
    } = opts;
    if cmd == "asm" {
        let Some(target) = file else {
            usage_error("'asm' needs an assembly file path or corpus program name");
        };
        asm_cmd(&target);
        return;
    }
    if cmd == "run" {
        let Some(target) = program else {
            usage_error("'run' needs --program FILE (or an embedded corpus name)");
        };
        run_program_cmd(&target, gen.as_deref(), quick);
        return;
    }
    if cmd == "serve" {
        serve_cmd(
            &socket,
            journal.as_deref(),
            workers,
            queue_cap,
            threads,
            postmortem_dir.as_deref(),
        );
        return;
    }
    if cmd == "call" {
        if prom {
            prom_cmd(&socket);
            return;
        }
        let Some(request) = file else {
            usage_error("'call' needs the JSON request line as an argument");
        };
        call_cmd(&socket, &request);
        return;
    }
    if cmd == "spans" {
        let id = file.map(|v| match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => usage_error("'spans' takes a numeric job id"),
        });
        spans_cmd(&socket, id);
        return;
    }
    if cmd == "bench" {
        bench(quick, threads);
        return;
    }
    if cmd == "checkpoint" || cmd == "resume" {
        let Some(path) = file else {
            usage_error(&format!("'{cmd}' needs the image file path"));
        };
        if cmd == "checkpoint" {
            checkpoint_cmd(&path, epoch, quick);
        } else {
            resume_cmd(&path, epoch, quick);
        }
        return;
    }
    if cmd == "metrics" {
        telemetry_metrics(epoch, quick, csv_path.as_deref());
        return;
    }
    if cmd == "trace" {
        telemetry_trace(epoch, quick);
        return;
    }
    let run_all = cmd == "all";
    let want = |name: &str| run_all || cmd == name;
    let sweep_threads = threads.unwrap_or_else(sweep::default_threads);

    // Population-based figures share one (expensive) sweep. With
    // --programs the embedded exynos-asm corpus joins the catalog as
    // program/* slices alongside the synthetic families.
    let population = if want("fig9") || want("fig16") || want("fig17") || want("table4") {
        let suite = exp::catalog_suite(scale, programs);
        println!(
            "# running population sweep (scale {scale}; {} slices x 6 generations; {sweep_threads} threads)...",
            suite.len()
        );
        let pop = exp::run_suite_batched(&suite, 5_000, 30_000, sweep_threads);
        if let Some(path) = &csv_path {
            let mut out = String::from("slice,generation,ipc,mpki,load_latency\n");
            for r in &pop {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4},{:.2}\n",
                    r.name, r.gen, r.ipc, r.mpki, r.load_latency
                ));
            }
            match std::fs::write(path, out) {
                Ok(()) => println!("# wrote per-slice results to {path}"),
                Err(e) => eprintln!("# failed to write {path}: {e}"),
            }
        }
        Some(pop)
    } else {
        None
    };

    if want("table1") {
        table1();
    }
    if want("fig1") {
        fig1();
    }
    if want("fig4") {
        fig4();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("table2") {
        table2();
    }
    if let Some(pop) = &population {
        if want("fig9") {
            fig9(pop);
        }
    }
    if want("fig10") {
        fig10(sweep_threads);
    }
    if want("uoc") {
        uoc();
    }
    if want("fig14") {
        fig14();
    }
    if want("fig15") {
        fig15();
    }
    if want("table3") {
        table3();
    }
    if let Some(pop) = &population {
        if want("fig16") || want("table4") {
            fig16(pop);
        }
        if want("fig17") {
            fig17(pop);
        }
    }
    if want("btb_ablation") {
        btb_ablation();
    }
    if want("branchstats") {
        branchstats();
    }
    if want("ablations") {
        ablations(sweep_threads);
    }
    if want("security_policies") {
        security_policies();
    }
}

/// Resolve `target` to an assembled program: a readable file path wins
/// (program name = file stem), otherwise the embedded corpus is tried by
/// name. Every failure — unreadable path, unknown name, assembly error —
/// is a typed [`exynos_asm::Program`]-level error printed to stderr with
/// exit status 2 (a usage/input problem, never a panic).
fn load_program(target: &str) -> exynos_asm::Program {
    let assembled = match std::fs::read_to_string(target) {
        Ok(src) => {
            let name = std::path::Path::new(target)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(target)
                .to_owned();
            exynos_asm::Program::assemble(&name, &src)
        }
        Err(io) => match exynos_asm::corpus_source(target) {
            Some(src) => exynos_asm::Program::assemble(target, src),
            None => {
                eprintln!("harness: cannot read '{target}' ({io})");
                eprintln!(
                    "harness: and it names no embedded corpus program (available: {})",
                    exynos_asm::CORPUS.map(|(n, _)| n).join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    match assembled {
        Ok(p) => p,
        Err(e) => {
            eprintln!("harness: {e}");
            std::process::exit(2);
        }
    }
}

/// `harness -- asm FILE|NAME`: assemble a program and print its
/// disassembly (with resolved labels and the entry marker) plus the
/// one-line static summary.
fn asm_cmd(target: &str) {
    let prog = load_program(target);
    print!("{}", prog.disasm());
    println!();
    println!("{}", prog.summary());
}

/// `harness -- run --program FILE|NAME [--gen mN] [--quick]`: execute a
/// program workload. Without `--gen` all six generations advance in one
/// lockstep batch over a single shared execution stream; with `--gen`
/// one generation runs on the scalar engine (bit-identical records).
fn run_program_cmd(target: &str, gen: Option<&str>, quick: bool) {
    use exynos_bench::service_runner::parse_generation;
    use exynos_trace::{SlicePlan, TraceSource};

    let prog = load_program(target);
    let name = prog.name().to_owned();
    println!("# {}", prog.summary());
    let source = exynos_asm::AsmSource::new(prog);
    let (warmup, detail) = if quick { (1_000, 5_000) } else { (5_000, 30_000) };
    let build = || match source.build(exp::PROGRAM_REGION_BASE, 0xA500) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("harness: {e}");
            std::process::exit(2);
        }
    };
    let plan = SlicePlan::new(warmup, detail);
    let mut rows: Vec<(&'static str, exynos_core::sim::SliceResult)> = Vec::new();
    match gen {
        Some(g) => {
            let generation = match parse_generation(g) {
                Ok(v) => v,
                Err(e) => usage_error(&e.to_string()),
            };
            let cfg = CoreConfig::for_generation(generation);
            let mut sim = exp::must(SimBuilder::config(cfg.clone()).build());
            let mut stream = build();
            let r = exp::must(sim.run_slice(&mut *stream, plan));
            rows.push((cfg.gen.name(), r));
        }
        None => {
            let gens = CoreConfig::all_generations();
            let mut batch = exynos_bench::batch::PopulationBatch::new();
            for cfg in &gens {
                batch.push(exp::must(SimBuilder::config(cfg.clone()).build()));
            }
            let mut stream = build();
            let results = exp::must(batch.run_slice_lockstep(&mut *stream, plan));
            for (cfg, r) in gens.iter().zip(results) {
                rows.push((cfg.gen.name(), r));
            }
        }
    }
    println!(
        "# program {name} ({warmup} warmup + {detail} measured instructions)"
    );
    println!("{:<6} {:>8} {:>8} {:>12}", "gen", "IPC", "MPKI", "load lat");
    for (g, r) in &rows {
        println!("{g:<6} {:>8.3} {:>8.3} {:>12.2}", r.ipc, r.mpki, r.avg_load_latency);
    }
}

fn security_policies() {
    hr("§V design space — mitigation cost after a context switch");
    for (name, mpki) in exp::security_policy_costs() {
        println!("{name:<30} post-switch MPKI {mpki:>7.2}");
    }
    println!("(paper: erasing all state costs retraining; per-context tagging costs");
    println!(" area; CONTEXT_HASH encryption keeps direction state and only re-trains");
    println!(" indirect/return targets — 'minimal performance, timing, and area impact')");
}

fn ablations(threads: usize) {
    hr("Ablations — the design choices of DESIGN.md, toggled one at a time");
    println!(
        "{:<30} {:<26} {:>10} {:>10} {:>8}",
        "feature", "metric", "with", "without", "delta"
    );
    for a in exp::ablations_with_threads(threads) {
        let delta = if a.without_feature.abs() > 1e-9 {
            100.0 * (a.with_feature / a.without_feature - 1.0)
        } else {
            0.0
        };
        println!(
            "{:<30} {:<26} {:>10.3} {:>10.3} {:>7.1}%",
            a.name, a.metric, a.with_feature, a.without_feature, delta
        );
    }
}

fn hr(title: &str) {
    println!("\n================ {title} ================");
}

fn table1() {
    hr("Table I — microarchitectural feature comparison");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "feature", "M1", "M2", "M3", "M4", "M5", "M6"
    );
    let gens = CoreConfig::all_generations();
    let row = |name: &str, f: &dyn Fn(&CoreConfig) -> String| {
        print!("{name:<22}");
        for g in &gens {
            print!(" {:>7}", f(g));
        }
        println!();
    };
    row("width", &|c| c.width.to_string());
    row("ROB", &|c| c.rob.to_string());
    row("int PRF", &|c| c.int_prf.to_string());
    row("fp PRF", &|c| c.fp_prf.to_string());
    row("L1D KB", &|c| (c.mem.l1d.size_bytes >> 10).to_string());
    row("L2 KB", &|c| (c.mem.l2.size_bytes >> 10).to_string());
    row("L3 KB", &|c| {
        c.mem
            .l3
            .map(|x| (x.size_bytes >> 10).to_string())
            .unwrap_or_else(|| "-".into())
    });
    row("miss buffers", &|c| c.mem.miss_buffers.to_string());
    row("mispredict", &|c| c.lat.mispredict.to_string());
    row("L1 hit (cascade)", &|c| format!("{}({})", c.lat.l1_hit, c.lat.l1_cascade));
    row("FP mac/mul/add", &|c| {
        format!("{}/{}/{}", c.lat.fmac, c.lat.fmul, c.lat.fadd)
    });
}

fn fig1() {
    hr("Fig. 1 — SHP MPKI vs GHIST length (CBP-like traces)");
    println!("{:>6} {:>8}", "GHIST", "MPKI");
    for len in [0usize, 8, 16, 32, 48, 64, 96, 128, 165, 206] {
        let mpki = exp::fig1_shp_mpki_vs_ghist(len, 24_000);
        println!("{len:>6} {mpki:>8.2}");
    }
    println!("(paper: diminishing returns with longer GHIST; M1 chose 165 bits)");
}

fn fig4() {
    hr("Fig. 4 — learned µBTB branch graph");
    let (graph, locked) = exp::fig4_ubtb_graph();
    println!("locked: {locked}; {} nodes", graph.len());
    for (pc, target, t, nt, uncond) in graph {
        println!(
            "  node {pc:#x} -> {target:#x}  edges: T={} NT={}  {}",
            t as u8,
            nt as u8,
            if uncond { "uncond" } else { "cond" }
        );
    }
}

fn fig5() {
    hr("Fig. 5 — taken-branch bubbles (1AT / ZAT / ZOT evolution)");
    println!("{:>4} {:>16}", "gen", "bubbles/taken");
    for cfg in FrontendConfig::all_generations() {
        let b = exp::fig5_bubbles_per_taken(cfg.clone());
        println!("{:>4} {:>16.3}", cfg.name, b);
    }
    println!("(paper: M3 adds 1-bubble always-taken; M5 reaches zero via replication)");
}

fn fig7() {
    hr("Fig. 7 — Mispredict Recovery Buffer effect (M5)");
    let (covered, reduction) = exp::fig7_mrb_effect();
    println!("MRB-covered post-mispredict redirects : {covered}");
    println!(
        "front-end bubble reduction            : {:.1}%",
        reduction * 100.0
    );
}

fn fig8() {
    hr("Fig. 8 — indirect prediction: full VPC vs M6 hybrid");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "targets", "VPC acc", "VPC cycles", "hybrid acc", "hybrid cyc"
    );
    for targets in [2usize, 4, 8, 16, 64, 128, 256] {
        let (a1, c1) = exp::fig8_indirect(targets, IndirectConfig::full_vpc());
        let (a2, c2) = exp::fig8_indirect(targets, IndirectConfig::m6_hybrid());
        println!("{targets:>8} {a1:>12.3} {c1:>12.2} {a2:>12.3} {c2:>12.2}");
    }
    println!("(paper: VPC superior at small target counts; hybrid wins as counts grow)");
}

fn table2() {
    hr("Table II — branch predictor storage (KB), computed vs paper");
    let paper = [
        ("M1", 8.0, 32.5, 58.4),
        ("M2", 8.0, 32.5, 58.4),
        ("M3", 16.0, 49.0, 110.8),
        ("M4", 16.0, 50.5, 221.5),
        ("M5", 32.0, 53.3, 225.5),
        ("M6", 32.0, 78.5, 451.0),
    ];
    println!(
        "{:>4} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "gen", "SHP", "L1BTBs", "L2BTB", "total", "p.SHP", "p.L1", "p.L2", "p.tot"
    );
    for ((name, shp, l1, l2), (pn, ps, pl1, pl2)) in exp::table2_storage().into_iter().zip(paper) {
        assert_eq!(name, pn);
        println!(
            "{:>4} | {:>8.1} {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            name,
            shp,
            l1,
            l2,
            shp + l1 + l2,
            ps,
            pl1,
            pl2,
            ps + pl1 + pl2
        );
    }
}

fn fig9(pop: &[exp::SliceRecord]) {
    hr("Fig. 9 — MPKI across workload slices, by generation");
    // The paper omits M2 (identical predictor to M1).
    for gen in ["M1", "M3", "M4", "M5", "M6"] {
        let curve = exp::gen_curve(pop, gen, |r| r.mpki);
        let n = curve.len();
        let pick = |q: f64| curve[((n - 1) as f64 * q) as usize];
        println!(
            "{gen}: p10 {:>6.2}  p50 {:>6.2}  p90 {:>6.2}  max {:>6.2}  avg {:>6.2}",
            pick(0.10),
            pick(0.50),
            pick(0.90),
            curve[n - 1],
            exp::gen_mean(pop, gen, |r| r.mpki)
        );
    }
    let m1 = exp::gen_mean(pop, "M1", |r| r.mpki);
    let m6 = exp::gen_mean(pop, "M6", |r| r.mpki);
    println!(
        "average MPKI M1 -> M6: {m1:.2} -> {m6:.2} ({:+.1}%)   [paper: 3.62 -> 2.54, -29.8%]",
        100.0 * (m6 / m1 - 1.0)
    );
    // SPECint-like subset (the paper's -25.6% M1 -> M6 claim).
    let subset = |gen: &str| {
        let v: Vec<f64> = pop
            .iter()
            .filter(|r| r.gen == gen && r.name.starts_with("specint/"))
            .map(|r| r.mpki)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let (s1, s6) = (subset("M1"), subset("M6"));
    println!(
        "SPECint-like MPKI M1 -> M6: {s1:.2} -> {s6:.2} ({:+.1}%)   [paper: -25.6%]",
        100.0 * (s6 / s1 - 1.0)
    );
}

fn fig10(threads: usize) {
    hr("Figs. 10-11 — CONTEXT_HASH target encryption (Spectre v2)");
    for (enc, h, n) in exp::attack_rate_sweep(256, threads) {
        println!(
            "encryption {}: cross-training hijacks {h}/{n}",
            if enc { "ON " } else { "OFF" }
        );
    }
}

fn uoc() {
    hr("Figs. 12-13 — micro-op cache modes (M5 loop kernel)");
    use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
    use exynos_trace::SlicePlan;
    let mut sim = exp::must(SimBuilder::config(CoreConfig::m5()).build());
    let mut gen = LoopNest::new(&LoopNestParams::default(), 95, 5);
    let r = exp::must(sim.run_slice(&mut gen, SlicePlan::new(10_000, 100_000)));
    println!("UOC stats: {:?}", sim.uoc_stats());
    println!(
        "µops supplied by UOC: {} of {} instructions ({:.1}%)",
        sim.stats().uoc_supplied,
        r.instructions,
        100.0 * sim.stats().uoc_supplied as f64 / r.instructions as f64
    );
}

fn fig14() {
    hr("Fig. 14 — one-pass / two-pass prefetching (M1)");
    let (resident, streaming) = exp::fig14_twopass();
    println!("L2-resident stream : {resident:?}");
    println!("DRAM-sized stream  : {streaming:?}");
    println!("(paper: first-pass L2 hits reach a watermark and flip to one-pass)");
}

fn fig15() {
    hr("Fig. 15 — adaptive standalone prefetcher state transitions (M5)");
    let s = exp::fig15_adaptive();
    println!("{s:?}");
    println!("(low-confidence phantoms promote on filter hits; inaccuracy demotes)");
}

fn table3() {
    hr("Table III — cache hierarchy sizes");
    println!("{:>4} {:>8} {:>8}", "gen", "L2", "L3");
    for cfg in CoreConfig::all_generations() {
        println!(
            "{:>4} {:>7}K {:>8}",
            cfg.gen,
            cfg.mem.l2.size_bytes >> 10,
            cfg.mem
                .l3
                .map(|c| format!("{}K", c.size_bytes >> 10))
                .unwrap_or_else(|| "-".into())
        );
    }
}

fn fig16(pop: &[exp::SliceRecord]) {
    hr("Fig. 16 / Table IV — average load latency by generation");
    println!("{:>4} {:>10} {:>10} {:>10} {:>10}", "gen", "p25", "p50", "p90", "avg");
    let mut avgs = Vec::new();
    for gen in ["M1", "M2", "M3", "M4", "M5", "M6"] {
        let curve = exp::gen_curve(pop, gen, |r| r.load_latency);
        let n = curve.len();
        let pick = |q: f64| curve[((n - 1) as f64 * q) as usize];
        let avg = exp::gen_mean(pop, gen, |r| r.load_latency);
        avgs.push(avg);
        println!(
            "{gen:>4} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            pick(0.25),
            pick(0.50),
            pick(0.90),
            avg
        );
    }
    println!(
        "avg load latency M1 -> M6: {:.1} -> {:.1} ({:+.1}%)   [paper Table IV: 14.9 -> 8.3, -44%]",
        avgs[0],
        avgs[5],
        100.0 * (avgs[5] / avgs[0] - 1.0)
    );
}

fn fig17(pop: &[exp::SliceRecord]) {
    hr("Fig. 17 — IPC across workload slices, by generation");
    let mut m1_avg = 0.0;
    for gen in ["M1", "M2", "M3", "M4", "M5", "M6"] {
        let curve = exp::gen_curve(pop, gen, |r| r.ipc);
        let n = curve.len();
        let pick = |q: f64| curve[((n - 1) as f64 * q) as usize];
        let avg = exp::gen_mean(pop, gen, |r| r.ipc);
        if gen == "M1" {
            m1_avg = avg;
        }
        println!(
            "{gen}: p10 {:>5.2}  p50 {:>5.2}  p90 {:>5.2}  max {:>5.2}  avg {:>5.2}  ({:+.0}% vs M1)",
            pick(0.10),
            pick(0.50),
            pick(0.90),
            curve[n - 1],
            avg,
            100.0 * (avg / m1_avg - 1.0)
        );
    }
    let m6 = exp::gen_mean(pop, "M6", |r| r.ipc);
    let cagr = ((m6 / m1_avg).powf(1.0 / 5.0) - 1.0) * 100.0;
    println!(
        "IPC M1 -> M6: {m1_avg:.2} -> {m6:.2}; compounded {cagr:.1}%/generation   [paper: 1.06 -> 2.71, 20.6%/yr]"
    );
    // §XI's three regimes: classify slices by their M1 IPC tercile and
    // report each regime's M6 gain — low-IPC moves with the memory path,
    // the middle with MPKI/resources, high-IPC with machine width.
    let mut m1_slices: Vec<(&str, f64)> = pop
        .iter()
        .filter(|r| r.gen == "M1")
        .map(|r| (r.name.as_str(), r.ipc))
        .collect();
    m1_slices.sort_by(|a, b| a.1.total_cmp(&b.1));
    let n = m1_slices.len();
    let tercile = |range: std::ops::Range<usize>| -> (f64, f64) {
        let names: Vec<&str> = m1_slices[range].iter().map(|(n, _)| *n).collect();
        let mean = |gen: &str| {
            let v: Vec<f64> = pop
                .iter()
                .filter(|r| r.gen == gen && names.contains(&r.name.as_str()))
                .map(|r| r.ipc)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        (mean("M1"), mean("M6"))
    };
    println!("\n§XI regimes (by M1 IPC tercile):");
    for (label, range) in [
        ("low-IPC (memory-bound)", 0..n / 3),
        ("medium-IPC", n / 3..2 * n / 3),
        ("high-IPC (width-capped)", 2 * n / 3..n),
    ] {
        let (a, b) = tercile(range);
        println!("  {label:<26} M1 {a:>5.2} -> M6 {b:>5.2}  ({:+.0}%)", 100.0 * (b / a - 1.0));
    }
}

fn btb_ablation() {
    hr("§IV.D — M4 L2BTB capacity/latency ablation (24k-branch working set)");
    let ((old_bub, old_mpki), (new_bub, new_mpki)) = exp::btb_ablation_web();
    println!("M4 with M3-era L2BTB     : bubbles/branch {old_bub:.3}  MPKI {old_mpki:.2}");
    println!("M4 (2x L2BTB, fast fills): bubbles/branch {new_bub:.3}  MPKI {new_mpki:.2}");
    println!(
        "front-end stall reduction: {:.1}%  (paper: +2.8% BBench IPC in isolation)",
        100.0 * (1.0 - new_bub / old_bub.max(1e-9))
    );
}

fn branchstats() {
    hr("§IV.A — branch-pair statistics");
    let (lead, second, both) = exp::branch_pair_stats();
    println!("lead taken      : {lead:.1}%   [paper: 60%]");
    println!("second taken    : {second:.1}%   [paper: 24%]");
    println!("both not-taken  : {both:.1}%   [paper: 16%]");
}

/// `harness -- bench [--quick] [--threads N]`: time the fixed-seed
/// reference sweep serially and in parallel, verify bit-identity, and
/// write the perf trajectory to `BENCH_sweep.json` in the current
/// directory (the repo root under `cargo run`).
/// `harness -- serve [--socket PATH] [--journal PATH] [--workers N]
/// [--queue N] [--threads N] [--postmortem-dir DIR]`: run the resilient
/// job tier on a unix socket until a client sends `shutdown`.
/// `--journal` arms the write-ahead job journal, so a killed server
/// recovers incomplete jobs on restart; `--threads` sets the warm-pool
/// build parallelism; `--postmortem-dir` makes the flight recorder
/// write its post-mortem JSONL dumps there.
fn serve_cmd(
    socket: &str,
    journal: Option<&str>,
    workers: usize,
    queue_cap: usize,
    threads: Option<usize>,
    postmortem_dir: Option<&str>,
) {
    use exynos_bench::service_runner::BenchRunner;
    use exynos_service::{Engine, ServiceConfig};
    let pool_threads = threads.unwrap_or_else(sweep::default_threads);
    let cfg = ServiceConfig {
        workers,
        queue_capacity: queue_cap,
        journal_path: journal.map(std::path::PathBuf::from),
        postmortem_dir: postmortem_dir.map(std::path::PathBuf::from),
        ..ServiceConfig::default()
    };
    let engine = match Engine::start(Box::new(BenchRunner::new(pool_threads)), cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("harness: failed to start the service engine: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "# serving on {socket}: {workers} workers, queue capacity {queue_cap}{}",
        journal.map(|j| format!(", journal {j}")).unwrap_or_default()
    );
    match exynos_service::socket::serve(engine, std::path::Path::new(socket)) {
        Ok(true) => eprintln!("# drained and stopped"),
        Ok(false) => {
            eprintln!("harness: drain timed out; in-flight jobs were aborted");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("harness: socket error: {e}");
            std::process::exit(1);
        }
    }
}

/// `harness -- call REQUEST [--socket PATH]`: send one protocol request
/// line, print the one-line response on stdout. Exits non-zero when the
/// server refuses (`"ok":false`) or cannot be reached, so shell scripts
/// can branch on the exit code alone.
fn call_cmd(socket: &str, request: &str) {
    use exynos_service::json::Json;
    let resp = match exynos_service::socket::call(
        std::path::Path::new(socket),
        request,
        std::time::Duration::from_secs(60),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("harness: call to {socket} failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{resp}");
    let ok = Json::parse(&resp)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        .unwrap_or(false);
    if !ok {
        std::process::exit(1);
    }
}

/// One protocol round trip, exiting on transport or server refusal, so
/// the observability subcommands share error handling. Returns the
/// parsed response plus the raw line.
fn call_checked(socket: &str, request: &str) -> (exynos_service::json::Json, String) {
    use exynos_service::json::Json;
    let resp = match exynos_service::socket::call(
        std::path::Path::new(socket),
        request,
        std::time::Duration::from_secs(60),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("harness: call to {socket} failed: {e}");
            std::process::exit(1);
        }
    };
    let v = match Json::parse(&resp) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("harness: unparseable response {resp:?}: {e}");
            std::process::exit(1);
        }
    };
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("harness: server refused: {resp}");
        std::process::exit(1);
    }
    (v, resp)
}

/// `harness -- call metrics --prom [--socket PATH]`: fetch the ops
/// metrics registry in Prometheus text exposition format and print the
/// raw text, ready for a scrape endpoint or promtool.
fn prom_cmd(socket: &str) {
    use exynos_service::json::Json;
    let (v, _) = call_checked(socket, "{\"cmd\":\"metrics\",\"format\":\"prom\"}");
    let Some(text) = v.get("metrics").and_then(Json::as_str) else {
        eprintln!("harness: response carried no \"metrics\" text");
        std::process::exit(1);
    };
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
}

/// `harness -- spans [ID] [--socket PATH]`: with a job id, print the
/// job's span tree as JSONL (`trace-job`); with no id, print the
/// per-stage latency quantile summaries (`quantiles`) as one JSON line.
fn spans_cmd(socket: &str, id: Option<u64>) {
    use exynos_service::json::Json;
    match id {
        Some(id) => {
            let (v, _) = call_checked(socket, &format!("{{\"cmd\":\"trace-job\",\"id\":{id}}}"));
            let Some(spans) = v.get("spans").and_then(Json::as_str) else {
                eprintln!("harness: response carried no \"spans\" payload");
                std::process::exit(1);
            };
            print!("{spans}");
            if !spans.is_empty() && !spans.ends_with('\n') {
                println!();
            }
        }
        None => {
            let (_, resp) = call_checked(socket, "{\"cmd\":\"quantiles\"}");
            println!("{resp}");
        }
    }
}

fn bench(quick: bool, threads: Option<usize>) {
    use std::time::Instant;
    hr("Sweep benchmark — fixed-seed reference population, serial vs parallel");
    let host_parallelism = sweep::default_threads();
    // The acceptance configuration is >= 4 worker threads, but a host
    // with one effective core gains nothing from oversubscription: the
    // comparison pass would measure scheduler overhead and report a
    // sub-1.0x "speedup" under a "parallel" heading. With no explicit
    // --threads on such a host, fall back to a serial comparison pass
    // and record the chosen mode in the output.
    let bench_threads = match threads {
        Some(n) => n,
        None if host_parallelism == 1 => 1,
        None => host_parallelism.max(4),
    };
    let mode = if bench_threads == 1 { "serial-fallback" } else { "parallel" };
    let scale = 1;
    // Warmup-heavy on purpose: the warm-start pool amortizes exactly this
    // cost, so the protocol mirrors the intended use (one long warmup,
    // repeated short detail sweeps over it).
    let (warmup, detail) = if quick { (40_000, 5_000) } else { (80_000, 30_000) };
    let slices = exynos_trace::standard_suite(scale).len();
    let jobs = slices * CoreConfig::all_generations().len();
    let steps = (warmup + detail) * jobs as u64;
    println!(
        "reference sweep: {slices} slices x 6 generations = {jobs} jobs, {} steps/job{}",
        warmup + detail,
        if quick { " (quick)" } else { "" }
    );
    println!(
        "host parallelism: {host_parallelism}; comparison pass runs {mode} ({bench_threads} threads)"
    );

    // The serial-vs-batched comparison is a ratio gate, and the two
    // engines differ by a single-digit percentage — comparable to this
    // class of host's run-to-run drift (frequency scaling, page-cache
    // state). Interleave the passes and keep each engine's best wall
    // time: noise only ever adds time, so min-of-N estimates true cost.
    // Five reps (up from three) because a ~1% true margin needs more
    // samples than this host's drift leaves room for at three.
    const RATIO_REPS: usize = 5;
    let mut serial_s = f64::INFINITY;
    let mut batched_s = f64::INFINITY;
    let mut serial = Vec::new();
    let mut batched = Vec::new();
    for _ in 0..RATIO_REPS {
        let t = Instant::now();
        serial = exp::run_population_with_threads(scale, warmup, detail, 1);
        serial_s = serial_s.min(t.elapsed().as_secs_f64());
        // Batched lockstep engine: one job per slice, all six
        // generations advanced over a single shared generator, so the
        // trace is produced once per group instead of once per member.
        let t = Instant::now();
        batched = exp::run_population_batched(scale, warmup, detail, bench_threads);
        batched_s = batched_s.min(t.elapsed().as_secs_f64());
    }
    let t1 = Instant::now();
    let parallel = exp::run_population_with_threads(scale, warmup, detail, bench_threads);
    let parallel_s = t1.elapsed().as_secs_f64();

    let records_equal = |a: &[exp::SliceRecord], b: &[exp::SliceRecord]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.name == y.name
                    && x.gen == y.gen
                    && x.ipc.to_bits() == y.ipc.to_bits()
                    && x.mpki.to_bits() == y.mpki.to_bits()
                    && x.load_latency.to_bits() == y.load_latency.to_bits()
            })
    };
    let bit_identical = records_equal(&serial, &parallel) && records_equal(&serial, &batched);
    let speedup = serial_s / parallel_s.max(1e-9);
    let batched_speedup = serial_s / batched_s.max(1e-9);
    let rate = |secs: f64| steps as f64 / secs.max(1e-9);
    println!(
        "serial   : {serial_s:>8.3} s   {:>12.0} steps/s   (best of {RATIO_REPS})",
        rate(serial_s)
    );
    println!(
        "parallel : {parallel_s:>8.3} s   {:>12.0} steps/s   ({speedup:.2}x, {bench_threads} threads)",
        rate(parallel_s)
    );
    println!(
        "batched  : {batched_s:>8.3} s   {:>12.0} steps/s   ({batched_speedup:.2}x vs serial, width 6, best of {RATIO_REPS})",
        rate(batched_s)
    );
    println!("bit-identical results: {bit_identical}");
    if !bit_identical {
        eprintln!("harness: parallel/batched sweep diverged from the serial baseline");
        std::process::exit(1);
    }

    // Chunk-cache comparison on the program corpus, where trace
    // materialization is genuinely expensive (the executor interprets
    // every instruction, unlike the arithmetic synthetic generators).
    // Batched regenerates the stream every pass; the cached pipelined
    // engine decodes on its first pass and serves every later one from
    // resident chunks — the interleaved best-of-N therefore compares
    // the regenerate-always baseline against the cache's warm steady
    // state, which is exactly the trade the cache exists to win.
    let cache = std::sync::Arc::new(exynos_core::batch::ChunkCache::unbounded());
    let prog_suite: Vec<exynos_trace::SliceSpec> = exp::catalog_suite(scale, true)
        .into_iter()
        .filter(|s| s.name.starts_with("program/"))
        .collect();
    let prog_jobs = prog_suite.len() * CoreConfig::all_generations().len();
    let prog_steps = (warmup + detail) * prog_jobs as u64;
    let mut prog_batched_s = f64::INFINITY;
    let mut prog_cached_s = f64::INFINITY;
    let mut prog_batched = Vec::new();
    let mut prog_cached = Vec::new();
    for _ in 0..RATIO_REPS {
        let t = Instant::now();
        prog_batched = exp::run_suite_batched(&prog_suite, warmup, detail, bench_threads);
        prog_batched_s = prog_batched_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        prog_cached =
            exp::run_suite_cached(&prog_suite, warmup, detail, bench_threads, &cache, true);
        prog_cached_s = prog_cached_s.min(t.elapsed().as_secs_f64());
    }
    let cached_identical = records_equal(&prog_batched, &prog_cached);
    let prog_rate = |secs: f64| prog_steps as f64 / secs.max(1e-9);
    println!(
        "programs : batched {prog_batched_s:>7.3} s ({:>12.0} steps/s) vs cached {prog_cached_s:>7.3} s ({:>12.0} steps/s)   {prog_jobs} jobs, best of {RATIO_REPS}",
        prog_rate(prog_batched_s),
        prog_rate(prog_cached_s)
    );
    println!("cached results equal batched: {cached_identical}");
    if !cached_identical {
        eprintln!("harness: cached pipelined sweep diverged from the batched baseline");
        std::process::exit(1);
    }

    // Warm-start path: checkpoint every job once after warmup, then fork
    // the pool for each sweep so repeated sweeps pay the warmup once.
    let t2 = Instant::now();
    let pool = exp::build_warm_pool(scale, warmup, bench_threads);
    let pool_s = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let (warm_serial, wt_serial) = exp::run_population_warm_timed(&pool, detail, 1);
    let warm_serial_s = t3.elapsed().as_secs_f64();
    let t4 = Instant::now();
    let (warm_parallel, wt_parallel) = exp::run_population_warm_timed(&pool, detail, bench_threads);
    let warm_parallel_s = t4.elapsed().as_secs_f64();
    // The resident warm pass forks the pool's in-memory simulators (no
    // snapshot decode), skips the warmup as a cache-cursor move, and
    // pulls the detail window through the chunk cache with the
    // double-buffered producer pipeline — the same sweep as the legacy
    // warm pass above, same thread count. The first rep materializes
    // the detail chunks (cold cache); later reps run entirely from
    // resident chunks, which is the cross-job steady state the cache
    // exists for, so min-of-N measures it and the wall ratio against
    // the legacy pass is the speedup the cache + pipeline deliver.
    let mut warm_resident_s = f64::INFINITY;
    let mut warm_resident = Vec::new();
    let mut wt_resident = exp::WarmTiming::default();
    for _ in 0..RATIO_REPS {
        let t5 = Instant::now();
        let (r, wt) = exp::run_population_warm_resident(&pool, detail, bench_threads, &cache, true);
        let w = t5.elapsed().as_secs_f64();
        if w < warm_resident_s {
            warm_resident_s = w;
            warm_resident = r;
            wt_resident = wt;
        }
    }
    let pipelined_speedup = warm_parallel_s / warm_resident_s.max(1e-9);

    let warm_equals_cold = records_equal(&serial, &warm_serial)
        && records_equal(&serial, &warm_parallel)
        && records_equal(&serial, &warm_resident);
    // Warm throughput over the steps actually executed: a warm sweep
    // steps only the detail window, and its wall clock also pays image
    // decode plus the generator fast-forward. Dividing detail steps by
    // the whole wall mixes those denominators (and once under-reported
    // warm throughput ~4x), so the honest rate is stepped instructions
    // over stepping time alone; prep is reported separately.
    let warm_rate =
        |t: &exp::WarmTiming| t.stepped_insts as f64 / t.stepping_s.max(1e-9);
    let warm_speedup = parallel_s / warm_parallel_s.max(1e-9);
    println!(
        "warm pool: {pool_s:>7.3} s to checkpoint {} jobs ({} warmup steps each, {:.1} MiB)",
        pool.jobs(),
        warmup,
        pool.bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "warm serial   : {warm_serial_s:>8.3} s wall (prep {:.3} s + stepping {:.3} s)   {:>12.0} steps/s post-resume",
        wt_serial.prep_s,
        wt_serial.stepping_s,
        warm_rate(&wt_serial)
    );
    println!(
        "warm parallel : {warm_parallel_s:>8.3} s wall (prep {:.3} s + stepping {:.3} s)   {:>12.0} steps/s post-resume   ({warm_speedup:.2}x vs cold parallel)",
        wt_parallel.prep_s,
        wt_parallel.stepping_s,
        warm_rate(&wt_parallel)
    );
    println!(
        "warm resident : {warm_resident_s:>8.3} s wall (prep {:.3} s + stepping {:.3} s)   {:>12.0} steps/s post-resume   ({pipelined_speedup:.2}x vs legacy warm, cached+pipelined)",
        wt_resident.prep_s,
        wt_resident.stepping_s,
        warm_rate(&wt_resident)
    );
    println!("warm results equal cold: {warm_equals_cold}");
    if !warm_equals_cold {
        eprintln!("harness: warm-start sweep diverged from the cold baseline");
        std::process::exit(1);
    }

    let cstats = cache.stats();
    println!(
        "chunk cache: {} hits, {} misses, {} evictions, {:.1} MiB resident",
        cstats.hits,
        cstats.misses,
        cstats.evictions,
        cstats.bytes as f64 / (1024.0 * 1024.0)
    );
    let json = format!(
        "{{\n  \"schema\": 2,\n  \"quick\": {quick},\n  \"scale\": {scale},\n  \"slices\": {slices},\n  \"generations\": 6,\n  \"jobs\": {jobs},\n  \"steps_per_job\": {},\n  \"total_steps\": {steps},\n  \"threads\": {bench_threads},\n  \"mode\": \"{mode}\",\n  \"available_parallelism\": {host_parallelism},\n  \"serial\": {{ \"wall_s\": {serial_s:.6}, \"steps_per_sec\": {:.0} }},\n  \"parallel\": {{ \"wall_s\": {parallel_s:.6}, \"steps_per_sec\": {:.0} }},\n  \"speedup\": {speedup:.4},\n  \"batched\": {{ \"wall_s\": {batched_s:.6}, \"steps_per_sec\": {:.0}, \"width\": 6 }},\n  \"batched_speedup\": {batched_speedup:.4},\n  \"cached\": {{ \"population\": \"programs\", \"jobs\": {prog_jobs}, \"wall_s\": {prog_cached_s:.6}, \"baseline_wall_s\": {prog_batched_s:.6}, \"steps_per_sec\": {:.0}, \"pipelined\": true }},\n  \"pipelined_speedup\": {pipelined_speedup:.4},\n  \"chunk_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"bytes\": {} }},\n  \"warm\": {{\n    \"pool_build_s\": {pool_s:.6},\n    \"serial_wall_s\": {warm_serial_s:.6},\n    \"parallel_wall_s\": {warm_parallel_s:.6},\n    \"stepped_insts\": {},\n    \"serial_prep_s\": {:.6},\n    \"serial_stepping_s\": {:.6},\n    \"parallel_prep_s\": {:.6},\n    \"parallel_stepping_s\": {:.6},\n    \"serial_steps_per_sec\": {:.0},\n    \"parallel_steps_per_sec\": {:.0},\n    \"resident_wall_s\": {warm_resident_s:.6},\n    \"resident_prep_s\": {:.6},\n    \"resident_stepping_s\": {:.6},\n    \"resident_steps_per_sec\": {:.0}\n  }},\n  \"warm_speedup\": {warm_speedup:.4},\n  \"warm_equals_cold\": {warm_equals_cold},\n  \"bit_identical\": {bit_identical}\n}}\n",
        warmup + detail,
        rate(serial_s),
        rate(parallel_s),
        rate(batched_s),
        prog_rate(prog_cached_s),
        cstats.hits,
        cstats.misses,
        cstats.evictions,
        cstats.bytes,
        wt_parallel.stepped_insts,
        wt_serial.prep_s,
        wt_serial.stepping_s,
        wt_parallel.prep_s,
        wt_parallel.stepping_s,
        warm_rate(&wt_serial),
        warm_rate(&wt_parallel),
        wt_resident.prep_s,
        wt_resident.stepping_s,
        warm_rate(&wt_resident),
    );
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => println!("wrote BENCH_sweep.json"),
        Err(e) => {
            eprintln!("harness: failed to write BENCH_sweep.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Drive an instrumented M6 through one representative slice per suite
/// family; the shared body behind `metrics` and `trace`.
///
/// Every slice runs on the SAME simulator so the telemetry stream spans
/// workload phase changes (the inter-slice PC discontinuities surface as
/// trace-gap events, like context switches would).
fn telemetry_run(epoch_len: u64, quick: bool, event_capacity: usize) -> exynos_telemetry::Telemetry {
    use exynos_telemetry::{Telemetry, TelemetryConfig};
    use exynos_trace::SlicePlan;

    if !Telemetry::ACTIVE {
        eprintln!(
            "harness: built without the `telemetry` feature; this subcommand produces no output"
        );
        eprintln!("harness: rebuild with default features to enable instrumentation");
        std::process::exit(2);
    }
    let mut tel = Telemetry::new(TelemetryConfig { epoch_len, event_capacity });
    let mut sim = exp::must(SimBuilder::config(CoreConfig::m6()).build());
    let (warmup, detail) = if quick { (1_000, 4_000) } else { (5_000, 30_000) };
    let suite = exynos_trace::standard_suite(1);
    let mut seen = Vec::new();
    for slice in &suite {
        if seen.contains(&slice.suite) {
            continue;
        }
        seen.push(slice.suite);
        eprintln!("# slice {} ({} + {} instructions)", slice.name, warmup, detail);
        let mut gen = exp::must_gen(slice);
        exp::must(sim.run_slice_with(&mut *gen, SlicePlan::new(warmup, detail), &mut tel));
    }
    // Close the trailing partial epoch so short runs still emit rows.
    sim.sample_telemetry(&mut tel);
    tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
    tel
}

/// `harness -- metrics [--epoch N] [--quick] [--csv PATH]`: epoch
/// time-series and histograms as JSON Lines on stdout, the summary table
/// on stderr.
fn telemetry_metrics(epoch_len: u64, quick: bool, csv_path: Option<&str>) {
    let tel = telemetry_run(epoch_len, quick, 1 << 16);
    print!("{}", tel.metrics_jsonl());
    if let Some(path) = csv_path {
        match std::fs::write(path, tel.metrics_csv()) {
            Ok(()) => eprintln!("# wrote epoch series to {path}"),
            Err(e) => {
                eprintln!("harness: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprint!("{}", tel.summary());
}

/// `harness -- trace [--epoch N] [--quick]`: the pipeline event trace as
/// JSON Lines on stdout, event counts on stderr.
fn telemetry_trace(epoch_len: u64, quick: bool) {
    let tel = telemetry_run(epoch_len, quick, 1 << 18);
    print!("{}", tel.events_jsonl());
    let events = tel.events();
    eprintln!("# {} events recorded, {} dropped", events.recorded(), events.dropped());
    for (name, count) in events.counts_by_name() {
        eprintln!("# {name:<22} {count}");
    }
}

/// The fixed workload protocol the checkpoint/resume pair shares: the
/// first catalog slice, with window sizes keyed off `--quick`.
fn roundtrip_windows(quick: bool) -> (u64, u64) {
    if quick {
        (2_000, 6_000)
    } else {
        (10_000, 40_000)
    }
}

/// `harness -- checkpoint FILE [--epoch N] [--quick]`: warm an M6 core
/// on the reference slice (silently), write the checkpoint image to
/// FILE, then continue through the detail window with telemetry JSONL
/// on stdout. `harness -- resume FILE` replays the same detail window
/// from the image; the two stdout streams are byte-identical.
fn checkpoint_cmd(path: &str, epoch_len: u64, quick: bool) {
    use exynos_telemetry::{Telemetry, TelemetryConfig};
    use exynos_trace::SlicePlan;
    if !Telemetry::ACTIVE {
        eprintln!(
            "harness: built without the `telemetry` feature; this subcommand produces no output"
        );
        eprintln!("harness: rebuild with default features to enable instrumentation");
        std::process::exit(2);
    }
    let (warmup, detail) = roundtrip_windows(quick);
    let mut sim = exp::must(SimBuilder::generation(exynos_core::config::Generation::M6).build());
    let suite = exynos_trace::standard_suite(1);
    let slice = &suite[0];
    let mut gen = exp::must_gen(slice);
    exp::must(sim.run_warmup(&mut *gen, warmup));
    let image = sim.checkpoint();
    if let Err(e) = std::fs::write(path, &image) {
        eprintln!("harness: failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "# checkpoint: {} bytes at instruction {} ({})",
        image.len(),
        sim.stats().instructions,
        slice.name
    );
    let mut tel = Telemetry::new(TelemetryConfig { epoch_len, event_capacity: 1 << 16 });
    exp::must(sim.run_slice_with(&mut *gen, SlicePlan::new(0, detail), &mut tel));
    sim.sample_telemetry(&mut tel);
    tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
    print!("{}", tel.metrics_jsonl());
}

/// `harness -- resume FILE [--epoch N] [--quick]`: load the checkpoint
/// image, fast-forward the reference generator to the saved position,
/// and run the same detail window as `checkpoint`, telemetry JSONL on
/// stdout.
fn resume_cmd(path: &str, epoch_len: u64, quick: bool) {
    use exynos_core::sim::Simulator;
    use exynos_telemetry::{Telemetry, TelemetryConfig};
    use exynos_trace::SlicePlan;
    if !Telemetry::ACTIVE {
        eprintln!(
            "harness: built without the `telemetry` feature; this subcommand produces no output"
        );
        eprintln!("harness: rebuild with default features to enable instrumentation");
        std::process::exit(2);
    }
    let (_, detail) = roundtrip_windows(quick);
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("harness: failed to read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut sim = match Simulator::resume(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("harness: {e}");
            std::process::exit(1);
        }
    };
    let suite = exynos_trace::standard_suite(1);
    let slice = &suite[0];
    let mut gen = exp::must_gen(slice);
    for _ in 0..sim.stats().instructions {
        let _ = gen.next_inst();
    }
    eprintln!(
        "# resumed at instruction {} ({})",
        sim.stats().instructions,
        slice.name
    );
    let mut tel = Telemetry::new(TelemetryConfig { epoch_len, event_capacity: 1 << 16 });
    exp::must(sim.run_slice_with(&mut *gen, SlicePlan::new(0, detail), &mut tel));
    sim.sample_telemetry(&mut tel);
    tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
    print!("{}", tel.metrics_jsonl());
}
