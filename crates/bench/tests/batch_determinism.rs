//! The batched lockstep engine's hard correctness gate: for every batch
//! width, member mix, fault plan and warm-fork shape, stepping N members
//! over one shared decoded stream must produce **byte-equal stats** to
//! each member running alone over its own freshly seeded generator.
//!
//! Stats are compared through their `Debug` rendering of the full
//! [`SliceResult`] — instructions, cycles, IPC/MPKI/latency floats and
//! the embedded frontend/memory stat blocks — so any divergence in any
//! counter fails, not just the three headline floats.

use exynos_bench::batch::PopulationBatch;
use exynos_bench::experiments as exp;
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::fault::FaultPlan;
use exynos_core::sim::Simulator;
use exynos_trace::{standard_suite, SlicePlan};

/// A stall-injection fault plan: deterministic pipeline perturbation
/// with no error paths, so scalar and batched runs stay comparable.
fn stall_plan() -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.stall_every = 257;
    plan.stall_cycles = 9;
    plan
}

/// Build one simulator for generation-index `g` (cycling m1..m6), with
/// or without the stall fault plan attached.
fn member(g: usize, faults: bool) -> Simulator {
    let gens = CoreConfig::all_generations();
    let cfg = gens[g % gens.len()].clone();
    let mut b = SimBuilder::config(cfg);
    if faults {
        b = b.fault_profile(stall_plan());
    }
    match b.build() {
        Ok(sim) => sim,
        Err(e) => panic!("member {g} failed to build: {e}"),
    }
}

/// Byte-equal digest of a slice result: the full Debug rendering.
fn digest(r: &exynos_core::sim::SliceResult) -> String {
    format!("{r:?}")
}

/// Scalar reference for one member: a private simulator and a private,
/// freshly seeded generator.
fn scalar_reference(g: usize, faults: bool, slice_idx: usize, plan: SlicePlan) -> String {
    let suite = standard_suite(1);
    let mut sim = member(g, faults);
    let mut gen = suite[slice_idx].build().unwrap();
    digest(&exp::must(sim.run_slice(&mut *gen, plan)))
}

fn assert_width_matches(width: usize, faults: bool, slice_idx: usize, plan: SlicePlan) {
    let suite = standard_suite(1);
    let mut batch = PopulationBatch::new();
    for g in 0..width {
        batch.push(member(g, faults));
    }
    let mut shared = suite[slice_idx].build().unwrap();
    let results = exp::must(batch.run_slice_lockstep(&mut *shared, plan));
    assert_eq!(results.len(), width);
    for (g, r) in results.iter().enumerate() {
        assert_eq!(
            scalar_reference(g, faults, slice_idx, plan),
            digest(r),
            "width {width} member {g} (faults: {faults}) diverged from scalar"
        );
    }
}

#[test]
fn widths_1_2_7_16_match_scalar() {
    let plan = SlicePlan::new(400, 600);
    for width in [1usize, 2, 7, 16] {
        assert_width_matches(width, false, 0, plan);
    }
}

#[test]
fn widths_match_scalar_under_fault_injection() {
    let plan = SlicePlan::new(400, 600);
    for width in [1usize, 2, 7, 16] {
        assert_width_matches(width, true, 1, plan);
    }
}

#[test]
fn all_six_generations_match_on_every_suite_family() {
    // One slice per suite family keeps the runtime bounded while still
    // covering every generator kind the catalog uses.
    let suite = standard_suite(1);
    let mut seen = Vec::new();
    let plan = SlicePlan::new(300, 500);
    for (idx, slice) in suite.iter().enumerate() {
        if seen.contains(&slice.suite) {
            continue;
        }
        seen.push(slice.suite);
        assert_width_matches(6, false, idx, plan);
    }
}

#[test]
fn batched_population_is_bit_identical_to_scalar_engine() {
    let scalar = exp::run_population_with_threads(1, 500, 800, 1);
    let batched = exp::run_population_batched(1, 500, 800, 1);
    assert_eq!(scalar.len(), batched.len());
    for (a, b) in scalar.iter().zip(&batched) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.gen, b.gen);
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{}/{}", a.name, a.gen);
        assert_eq!(a.mpki.to_bits(), b.mpki.to_bits(), "{}/{}", a.name, a.gen);
        assert_eq!(a.load_latency.to_bits(), b.load_latency.to_bits(), "{}/{}", a.name, a.gen);
    }
}

#[test]
fn warm_batches_forked_from_one_snapshot_match_scalar_forks() {
    let suite = standard_suite(1);
    let slice = &suite[2];
    let warmup = 1_500u64;
    let detail = 900u64;
    // One warmed snapshot, forked into a width-4 batch.
    let image = {
        let mut sim = member(3, false);
        let mut gen = slice.build().unwrap();
        exp::must(sim.run_warmup(&mut *gen, warmup));
        sim.checkpoint()
    };
    let resume = || match Simulator::resume(&image) {
        Ok(sim) => sim,
        Err(e) => panic!("snapshot failed to resume: {e}"),
    };
    let mut batch = PopulationBatch::new();
    for _ in 0..4 {
        batch.push(resume());
    }
    let mut shared = slice.build().unwrap();
    for _ in 0..warmup {
        let _ = shared.next_inst();
    }
    let batched = exp::must(batch.run_slice_lockstep(&mut *shared, SlicePlan::new(0, detail)));
    // Scalar forks: each resumes the same image with a private stream.
    for (m, b) in batched.iter().enumerate() {
        let mut sim = resume();
        let mut gen = slice.build().unwrap();
        for _ in 0..warmup {
            let _ = gen.next_inst();
        }
        let scalar = exp::must(sim.run_slice(&mut *gen, SlicePlan::new(0, detail)));
        assert_eq!(digest(&scalar), digest(b), "warm fork member {m} diverged");
    }
}

#[test]
fn warm_population_batched_matches_scalar_warm_and_cold() {
    let (scale, warmup, detail) = (1, 1_000u64, 700u64);
    let pool = exp::build_warm_pool(scale, warmup, 1);
    let cold = exp::run_population_with_threads(scale, warmup, detail, 1);
    let warm_scalar = exp::run_population_warm_scalar(&pool, detail, 1);
    let warm_batched = exp::run_population_warm(&pool, detail, 1);
    for (label, warm) in [("scalar", &warm_scalar), ("batched", &warm_batched)] {
        assert_eq!(cold.len(), warm.len());
        for (a, b) in cold.iter().zip(warm.iter()) {
            assert_eq!(a.name, b.name, "warm {label}");
            assert_eq!(a.gen, b.gen, "warm {label}");
            assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "warm {label} {}/{}", a.name, a.gen);
            assert_eq!(a.mpki.to_bits(), b.mpki.to_bits(), "warm {label} {}/{}", a.name, a.gen);
            assert_eq!(
                a.load_latency.to_bits(),
                b.load_latency.to_bits(),
                "warm {label} {}/{}",
                a.name,
                a.gen
            );
        }
    }
}

/// The acceptance gate for program-driven traces: every embedded corpus
/// program, built through the unified `TraceSource` API, must run
/// bit-identically through the scalar and batched lockstep engines
/// across all six generations.
#[test]
fn program_slices_match_scalar_across_all_generations() {
    let slices = match exynos_asm::corpus_slices(SlicePlan::default(), 900) {
        Ok(s) => s,
        Err(e) => panic!("corpus failed to assemble: {e}"),
    };
    assert!(slices.len() >= 8, "corpus smaller than expected: {}", slices.len());
    let plan = SlicePlan::new(400, 800);
    for slice in &slices {
        let mut batch = PopulationBatch::new();
        for g in 0..6 {
            batch.push(member(g, false));
        }
        let mut shared = slice.build().unwrap();
        let results = exp::must(batch.run_slice_lockstep(&mut *shared, plan));
        for (g, b) in results.iter().enumerate() {
            let mut sim = member(g, false);
            let mut gen = slice.build().unwrap();
            let scalar = exp::must(sim.run_slice(&mut *gen, plan));
            assert_eq!(digest(&scalar), digest(b), "{} member {g} diverged", slice.name);
        }
    }
}

/// The mixed catalog (synthetic families + program slices) through the
/// suite-parameterized sweep entry points: batched must stay
/// bit-identical to scalar with programs in the population.
#[test]
fn mixed_catalog_batched_matches_scalar() {
    let suite = exp::catalog_suite(1, true);
    assert!(suite.iter().any(|s| s.name.starts_with("program/")), "corpus missing from catalog");
    let scalar = exp::run_suite_with_threads(&suite, 300, 500, 1);
    let batched = exp::run_suite_batched(&suite, 300, 500, 1);
    assert_eq!(scalar.len(), batched.len());
    for (a, b) in scalar.iter().zip(&batched) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.gen, b.gen);
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{}/{}", a.name, a.gen);
        assert_eq!(a.mpki.to_bits(), b.mpki.to_bits(), "{}/{}", a.name, a.gen);
        assert_eq!(a.load_latency.to_bits(), b.load_latency.to_bits(), "{}/{}", a.name, a.gen);
    }
}

/// The chunk-cache acceptance matrix: the cached lockstep path must be
/// bit-identical to the scalar reference for every cache budget — zero
/// (pure pass-through), one byte (every insert immediately evicted, so
/// chunks rematerialize constantly), exactly one chunk, and unbounded —
/// in both serial and pipelined (double-buffered producer) modes, with
/// all six generations in the batch, with and without fault injection.
/// The plan deliberately crosses a canonical chunk boundary so block
/// splits at the chunk edge and at the warmup/detail boundary are both
/// exercised.
#[test]
fn cached_budgets_and_pipelining_match_scalar() {
    use exynos_core::batch::{CachedStream, ChunkCache, CHUNK_LEN};
    use std::sync::Arc;
    let chunk_bytes = (CHUNK_LEN * std::mem::size_of::<exynos_trace::Inst>()) as u64;
    let suite = standard_suite(1);
    let slice_idx = 0;
    let plan = SlicePlan::new(6_000, 4_000); // total 10k > CHUNK_LEN=8192
    for faults in [false, true] {
        let refs: Vec<String> =
            (0..6).map(|g| scalar_reference(g, faults, slice_idx, plan)).collect();
        for budget in [Some(0), Some(1), Some(chunk_bytes), None] {
            let cache = Arc::new(ChunkCache::with_budget(budget));
            for pipelined in [false, true] {
                let mut batch = PopulationBatch::new();
                for g in 0..6 {
                    batch.push(member(g, faults));
                }
                let mut stream = CachedStream::for_slice(Arc::clone(&cache), &suite[slice_idx]);
                let results = exp::must(batch.run_slice_cached(&mut stream, plan, pipelined));
                for (g, r) in results.iter().enumerate() {
                    assert_eq!(
                        refs[g],
                        digest(r),
                        "member {g} diverged (faults {faults}, budget {budget:?}, \
                         pipelined {pipelined})"
                    );
                }
            }
            let stats = cache.stats();
            if budget == Some(1) {
                assert!(stats.evictions > 0, "1-byte budget must evict: {stats:?}");
            }
            if budget == Some(0) {
                assert_eq!(stats.bytes, 0, "zero budget must hold nothing: {stats:?}");
            }
        }
    }
}

/// With the telemetry feature on, an instrumented scalar run must still
/// match the (uninstrumented) batched path — sampling is observation,
/// not perturbation.
#[cfg(feature = "telemetry")]
#[test]
fn telemetry_instrumented_scalar_matches_batched() {
    use exynos_telemetry::{Telemetry, TelemetryConfig};
    let suite = standard_suite(1);
    let slice = &suite[0];
    let plan = SlicePlan::new(400, 600);
    let mut batch = PopulationBatch::new();
    for g in 0..6 {
        batch.push(member(g, false));
    }
    let mut shared = slice.build().unwrap();
    let batched = exp::must(batch.run_slice_lockstep(&mut *shared, plan));
    for (g, b) in batched.iter().enumerate() {
        let mut sim = member(g, false);
        let mut gen = slice.build().unwrap();
        let mut tel = Telemetry::new(TelemetryConfig { epoch_len: 250, event_capacity: 1 << 12 });
        let scalar = exp::must(sim.run_slice_with(&mut *gen, plan, &mut tel));
        assert_eq!(digest(&scalar), digest(b), "instrumented member {g} diverged");
    }
    // The cached pipelined path must agree with the same instrumented
    // scalar reference: the cache serves records, not timing.
    let cache = std::sync::Arc::new(exynos_core::batch::ChunkCache::unbounded());
    let mut batch = PopulationBatch::new();
    for g in 0..6 {
        batch.push(member(g, false));
    }
    let mut stream = exynos_core::batch::CachedStream::for_slice(cache, slice);
    let cached = exp::must(batch.run_slice_cached(&mut stream, plan, true));
    for (b, c) in batched.iter().zip(&cached) {
        assert_eq!(digest(b), digest(c), "cached pipelined diverged under telemetry build");
    }
}
