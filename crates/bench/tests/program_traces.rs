//! Program-driven traces through the full instrumented stack: the
//! executor must be deterministic not just in its record stream but in
//! everything downstream of it — two identical runs must produce
//! byte-identical telemetry JSONL.

use exynos_bench::experiments as exp;
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_trace::{SlicePlan, TraceGen, TraceSource};

/// Two executors built from the same (program, region, seed) must emit
/// the same records forever — including across restart boundaries.
#[test]
fn executor_streams_are_deterministic() {
    for (name, _) in exynos_asm::CORPUS {
        let prog = exynos_asm::corpus_program(name).unwrap();
        let source = exynos_asm::AsmSource::new(prog);
        let mut a = source.build(42, 7).unwrap();
        let mut b = source.build(42, 7).unwrap();
        for i in 0..20_000 {
            let x = a.next_inst();
            let y = b.next_inst();
            assert_eq!(format!("{x:?}"), format!("{y:?}"), "{name} diverged at record {i}");
        }
    }
}

/// Changing the seed must change the stream: the seed feeds x27, the
/// corpus kernels' entropy register, so call_tree's indirect-call
/// targets follow a different xorshift walk under a different seed.
#[test]
fn seeds_select_distinct_streams() {
    let prog = exynos_asm::corpus_program("call_tree").unwrap();
    let source = exynos_asm::AsmSource::new(prog);
    let mut a = source.build(42, 1).unwrap();
    let mut b = source.build(42, 2).unwrap();
    let mut differed = false;
    for _ in 0..5_000 {
        if format!("{:?}", a.next_inst()) != format!("{:?}", b.next_inst()) {
            differed = true;
            break;
        }
    }
    assert!(differed, "seeds 1 and 2 produced identical call_tree streams");
}

/// The end-to-end determinism gate: two instrumented simulator runs over
/// a freshly built program stream produce byte-identical metrics and
/// event JSONL.
#[cfg(feature = "telemetry")]
#[test]
fn program_telemetry_jsonl_is_byte_identical() {
    use exynos_telemetry::{Telemetry, TelemetryConfig};
    let run = || {
        let prog = exynos_asm::corpus_program("nested_loops").unwrap();
        let source = exynos_asm::AsmSource::new(prog);
        let mut gen = source.build(exp::PROGRAM_REGION_BASE, 0xA500).unwrap();
        let mut sim = exp::must(SimBuilder::config(CoreConfig::m5()).build());
        let mut tel = Telemetry::new(TelemetryConfig { epoch_len: 500, event_capacity: 1 << 14 });
        exp::must(sim.run_slice_with(&mut *gen, SlicePlan::new(500, 2_500), &mut tel));
        sim.sample_telemetry(&mut tel);
        tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
        (tel.metrics_jsonl(), tel.events_jsonl())
    };
    let (metrics_a, events_a) = run();
    let (metrics_b, events_b) = run();
    assert!(!metrics_a.is_empty());
    assert_eq!(metrics_a, metrics_b, "metrics JSONL diverged between identical runs");
    assert_eq!(events_a, events_b, "event JSONL diverged between identical runs");
}

/// A malformed program surfaces as a typed `TraceError`, and the
/// `From<TraceError> for SimError` bridge turns it into a non-retryable
/// configuration error — the service tier's no-panic contract.
#[test]
fn malformed_program_is_a_typed_non_retryable_error() {
    let err = exynos_asm::Program::assemble("broken", "main:\n    ldr x1\n").unwrap_err();
    assert_eq!(err.kind(), "asm");
    let sim_err = exynos_core::SimError::from(err);
    assert!(matches!(sim_err, exynos_core::SimError::Config { param: "workload", .. }));
    assert!(!sim_err.is_retryable());
}
