//! Warm-start sweeps must be indistinguishable from cold-start sweeps:
//! forking every population job from a checkpoint image taken after its
//! warmup yields bit-identical records to re-running the warmup.

use exynos_bench::experiments as exp;

#[test]
fn warm_sweep_matches_cold_sweep_bit_for_bit() {
    let (scale, warmup, detail) = (1, 3_000, 2_000);
    let cold = exp::run_population_with_threads(scale, warmup, detail, 2);
    let pool = exp::build_warm_pool(scale, warmup, 2);
    assert_eq!(pool.jobs(), cold.len());
    assert_eq!(pool.warmup(), warmup);
    assert_eq!(pool.scale(), scale);
    let warm = exp::run_population_warm(&pool, detail, 2);
    assert_eq!(cold.len(), warm.len());
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.gen, b.gen);
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{} {}", a.name, a.gen);
        assert_eq!(a.mpki.to_bits(), b.mpki.to_bits(), "{} {}", a.name, a.gen);
        assert_eq!(
            a.load_latency.to_bits(),
            b.load_latency.to_bits(),
            "{} {}",
            a.name,
            a.gen
        );
    }
}
