//! Acceptance soak for the resilient job tier: with chaos fault plans,
//! impossible deadlines, wedged watchdogs, overload and random cancels,
//! every job must reach a terminal state (completed / retried-then-
//! completed / typed error) — zero panics, zero hangs. A killed-and-
//! restarted server must recover journaled jobs byte-identically to an
//! uninterrupted run.

use exynos_bench::service_runner::BenchRunner;
use exynos_service::engine::{Engine, JobStatus, ServiceConfig, SubmitError};
use exynos_service::job::{JobKind, JobSpec};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Upper bound for any single job to terminate. Generous because debug
/// builds on a loaded single-core host are slow; a healthy run finishes
/// orders of magnitude sooner. Hitting it means a hang — a hard failure.
const WAIT: Duration = Duration::from_secs(240);

fn wait_terminal(engine: &Engine, id: u64) -> JobStatus {
    let deadline = Instant::now() + WAIT;
    loop {
        let st = engine.status(id).unwrap_or_else(|| panic!("job {id} vanished"));
        if st.state.is_terminal() {
            return st;
        }
        assert!(Instant::now() < deadline, "job {id} hung (state {:?})", st.state);
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn quick_sweep() -> JobSpec {
    JobSpec::plain(JobKind::Sweep { scale: 1, warmup: 200, detail: 300, threads: 1 })
}

fn quick_checkpoint(generation: &str, warmup: u64) -> JobSpec {
    JobSpec::plain(JobKind::Checkpoint { generation: generation.to_owned(), warmup })
}

/// A spec that wedges retirement hard enough to exhaust a zero-budget
/// watchdog within ~51 instructions — the fast path to a typed
/// `forward_progress_stall` terminal failure.
fn wedge_spec() -> JobSpec {
    let mut spec = quick_checkpoint("m1", 30_000);
    spec.stall_every = 50;
    spec.stall_cycles = 80_000;
    spec.watchdog = Some((10_000, 0));
    spec
}

fn fast_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        default_deadline_ms: 0,
        default_max_retries: 1,
        backoff_base_ms: 1,
        backoff_cap_ms: 10,
        breaker_threshold: 10,
        breaker_cooldown_jobs: 1_000,
        journal_path: None,
        ..ServiceConfig::default()
    }
}

#[test]
fn chaos_soak_every_job_terminates_typed() {
    let engine = Engine::start(Box::new(BenchRunner::new(1)), fast_cfg()).unwrap();

    // A mixed population: clean work, chaos plans, a strict-decode trap,
    // a watchdog wedge, an impossible deadline, and a random kill.
    let clean = engine.submit(quick_sweep(), None, None).unwrap();
    let mut chaos = quick_sweep();
    chaos.chaos_seed = Some(0xC0FFEE);
    let chaotic = engine.submit(chaos, None, None).unwrap();
    let mut strict = quick_checkpoint("m3", 3_000);
    strict.chaos_seed = Some(7);
    strict.strict_decode = true;
    let strict_id = engine.submit(strict, None, None).unwrap();
    let wedged = engine.submit(wedge_spec(), None, None).unwrap();
    let doomed = engine.submit(quick_checkpoint("m6", 400), Some(1), None).unwrap();
    let killed = engine.submit(quick_sweep(), None, None).unwrap();
    engine.cancel(killed);

    // Every job terminates; no state other than completed/failed exists
    // at rest, and every failure carries a typed kind.
    for id in [clean, chaotic, strict_id, wedged, doomed, killed] {
        let st = wait_terminal(&engine, id);
        if let Some(kind) = &st.error_kind {
            assert!(
                [
                    "malformed_inst",
                    "resource_invariant",
                    "predictor_corruption",
                    "forward_progress_stall",
                    "snapshot_decode",
                    "config",
                    "deadline",
                    "cancelled",
                    "overloaded",
                ]
                .contains(&kind.as_str()),
                "job {id}: untyped failure kind {kind:?}"
            );
        }
    }

    // Per-job expectations.
    let st = wait_terminal(&engine, clean);
    assert!(st.payload.is_some(), "clean sweep completes: {:?}", st.error);
    let st = wait_terminal(&engine, strict_id);
    assert_eq!(st.error_kind.as_deref(), Some("malformed_inst"), "{:?}", st.error);
    let st = wait_terminal(&engine, wedged);
    assert_eq!(st.error_kind.as_deref(), Some("forward_progress_stall"), "{:?}", st.error);
    assert_eq!(st.attempts, 2, "a retryable wedge gets its one retry before failing");
    let st = wait_terminal(&engine, doomed);
    assert_eq!(st.error_kind.as_deref(), Some("deadline"), "{:?}", st.error);
    let st = wait_terminal(&engine, killed);
    if st.error_kind.is_some() {
        // The cancel won the race; a completed payload means the job
        // finished first — both are legitimate terminal states.
        assert_eq!(st.error_kind.as_deref(), Some("cancelled"), "{:?}", st.error);
    }

    let stats = engine.stats_json();
    assert!(stats.contains("\"deadline_misses\":1"), "stats: {stats}");
    assert!(stats.contains("\"retries\":"), "stats: {stats}");
    assert!(engine.drain(WAIT), "drain must settle");
}

#[test]
fn overload_sheds_with_typed_refusal() {
    // workers: 0 — nothing drains the queue, so capacity is hit exactly.
    let cfg = ServiceConfig { workers: 0, queue_capacity: 2, ..fast_cfg() };
    let engine = Engine::start(Box::new(BenchRunner::new(1)), cfg).unwrap();
    engine.submit(quick_sweep(), None, None).unwrap();
    engine.submit(quick_checkpoint("m1", 100), None, None).unwrap();
    match engine.submit(quick_checkpoint("m2", 100), None, None) {
        Err(SubmitError::Overloaded { depth }) => assert_eq!(depth, 2),
        other => panic!("third submission must shed: {other:?}"),
    }
    // The shed job is terminal immediately — nothing to poll, nothing
    // for a restart to resurrect.
    let st = engine.status(3).expect("shed job is recorded");
    assert!(st.state.is_terminal());
    assert_eq!(st.error_kind.as_deref(), Some("overloaded"));
    assert!(engine.stats_json().contains("\"sheds\":1"));
    engine.abort();
}

#[test]
fn breaker_quarantines_repeat_watchdog_offenders() {
    let cfg = ServiceConfig { workers: 1, breaker_threshold: 2, ..fast_cfg() };
    let engine = Engine::start(Box::new(BenchRunner::new(1)), cfg).unwrap();
    for _ in 0..2 {
        let id = engine.submit(wedge_spec(), None, Some(0)).unwrap();
        let st = wait_terminal(&engine, id);
        assert_eq!(st.error_kind.as_deref(), Some("forward_progress_stall"));
    }
    match engine.submit(wedge_spec(), None, Some(0)) {
        Err(SubmitError::Quarantined { failures }) => assert_eq!(failures, 2),
        other => panic!("third wedge must be quarantined: {other:?}"),
    }
    // Other configurations are unaffected.
    let ok = engine.submit(quick_checkpoint("m4", 200), None, None).unwrap();
    let st = wait_terminal(&engine, ok);
    assert!(st.payload.is_some(), "{:?}", st.error);
    assert!(engine.stats_json().contains("\"breaker_open\":1"));
    assert!(engine.drain(WAIT));
}

fn temp_journal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("exynos-service-{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn crash_recovery_is_byte_identical_to_an_uninterrupted_run() {
    let sweep = quick_sweep();
    let ckpt = quick_checkpoint("m6", 400);

    // Reference: an uninterrupted volatile engine.
    let reference = Engine::start(Box::new(BenchRunner::new(1)), fast_cfg()).unwrap();
    let r1 = reference.submit(sweep.clone(), None, None).unwrap();
    let r2 = reference.submit(ckpt.clone(), None, None).unwrap();
    let ref_sweep = wait_terminal(&reference, r1).payload.expect("reference sweep completes");
    let ref_ckpt = wait_terminal(&reference, r2).payload.expect("reference checkpoint completes");
    assert!(reference.drain(WAIT));

    // "Server" that accepts and journals but dies before running
    // anything (workers: 0 models the worst kill -9 window: submissions
    // durable, zero execution progress).
    let journal = temp_journal("crash");
    let doomed_cfg =
        ServiceConfig { workers: 0, journal_path: Some(journal.clone()), ..fast_cfg() };
    let doomed = Engine::start(Box::new(BenchRunner::new(1)), doomed_cfg).unwrap();
    let id1 = doomed.submit(sweep.clone(), None, None).unwrap();
    let id2 = doomed.submit(ckpt.clone(), None, None).unwrap();
    doomed.abort(); // no drain, no terminal records — the crash.

    // Restart on the same journal: both jobs come back, run, and produce
    // byte-identical payloads.
    let restart_cfg = ServiceConfig { journal_path: Some(journal.clone()), ..fast_cfg() };
    let restarted = Engine::start(Box::new(BenchRunner::new(1)), restart_cfg).unwrap();
    let st1 = wait_terminal(&restarted, id1);
    let st2 = wait_terminal(&restarted, id2);
    assert!(st1.recovered && st2.recovered, "recovered jobs are flagged");
    assert_eq!(st1.payload.as_deref(), Some(ref_sweep.as_str()), "sweep byte-identical");
    assert_eq!(st2.payload.as_deref(), Some(ref_ckpt.as_str()), "checkpoint byte-identical");
    assert!(restarted.stats_json().contains("\"recovered\":2"));
    assert!(restarted.drain(WAIT));

    // Second restart: the terminal records themselves are durable — the
    // results are served from the journal without re-running anything.
    let cold_cfg = ServiceConfig {
        workers: 0,
        journal_path: Some(journal.clone()),
        ..fast_cfg()
    };
    let cold = Engine::start(Box::new(BenchRunner::new(1)), cold_cfg).unwrap();
    let st = cold.status(id1).expect("terminal job survives restart");
    assert!(st.state.is_terminal() && !st.recovered);
    assert_eq!(st.payload.as_deref(), Some(ref_sweep.as_str()));
    assert_eq!(cold.queue_depth(), 0, "nothing re-enqueued");
    cold.abort();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn torn_journal_tail_is_tolerated() {
    use std::io::Write;
    let journal = temp_journal("torn");
    let cfg = ServiceConfig { workers: 0, journal_path: Some(journal.clone()), ..fast_cfg() };
    let engine = Engine::start(Box::new(BenchRunner::new(1)), cfg.clone()).unwrap();
    let id = engine.submit(quick_checkpoint("m2", 300), None, None).unwrap();
    engine.abort();
    // The crash tore the last frame mid-write.
    {
        let mut f = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(&[0x45, 0x58, 0x4A]).unwrap(); // half a magic
    }
    let cfg2 = ServiceConfig { workers: 1, journal_path: Some(journal.clone()), ..fast_cfg() };
    let engine = Engine::start(Box::new(BenchRunner::new(1)), cfg2).unwrap();
    assert!(engine.stats_json().contains("\"journal_torn\":true"));
    // Telemetry builds dump the flight recorder on torn-tail recovery.
    if exynos_telemetry::Telemetry::ACTIVE {
        assert!(engine.postmortem_count() >= 1, "torn tail must trigger a post-mortem");
        let dump = engine.last_postmortem().expect("dump retained");
        assert_postmortem_parses(&dump, "torn_journal");
    }
    let st = wait_terminal(&engine, id);
    assert!(st.recovered && st.payload.is_some(), "clean prefix still recovers: {:?}", st.error);
    assert!(engine.drain(WAIT));
    let _ = std::fs::remove_file(&journal);
}

/// Every line of a post-mortem dump must be standalone-parseable JSON,
/// and the header line must carry the trigger reason.
fn assert_postmortem_parses(dump: &str, reason: &str) {
    use exynos_service::json::Json;
    let mut lines = dump.lines();
    let header = lines.next().expect("dump has a header line");
    let h = Json::parse(header).unwrap_or_else(|e| panic!("unparseable header {header:?}: {e}"));
    assert_eq!(h.get("type").and_then(Json::as_str), Some("postmortem"), "{header}");
    assert_eq!(h.get("reason").and_then(Json::as_str), Some(reason), "{header}");
    let declared = h.get("lines").and_then(Json::as_u64).expect("header declares line count");
    let mut body = 0u64;
    for line in lines {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        assert!(v.get("type").and_then(Json::as_str).is_some(), "untyped line {line}");
        body += 1;
    }
    assert_eq!(body, declared, "header line count matches the body");
}

#[test]
fn watchdog_trip_dumps_a_parseable_postmortem() {
    if !exynos_telemetry::Telemetry::ACTIVE {
        return; // flight recorder is compiled out
    }
    let dir = std::env::temp_dir().join(format!("exynos-postmortem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ServiceConfig {
        workers: 1,
        postmortem_dir: Some(dir.clone()),
        ..fast_cfg()
    };
    let engine = Engine::start(Box::new(BenchRunner::new(1)), cfg).unwrap();
    let id = engine.submit(wedge_spec(), None, Some(0)).unwrap();
    let st = wait_terminal(&engine, id);
    assert_eq!(st.error_kind.as_deref(), Some("forward_progress_stall"), "{:?}", st.error);

    // The failure dumped the flight recorder, in memory and on disk.
    assert_eq!(engine.postmortem_count(), 1);
    let dump = engine.last_postmortem().expect("dump retained");
    assert_postmortem_parses(&dump, "forward_progress_stall");
    assert!(dump.contains("\"type\":\"span\""), "dump carries the job's spans: {dump}");
    assert!(dump.contains("\"name\":\"attempt[1]\""), "dump names the attempt: {dump}");
    assert!(dump.contains("watchdog_rung"), "slice span carries trip attrs: {dump}");
    let on_disk = std::fs::read_to_string(dir.join("postmortem-1.jsonl"))
        .expect("dump written to --postmortem-dir");
    assert_eq!(on_disk, dump, "disk copy matches the in-memory dump");

    // The job's span tree is queryable and complete, and the latency
    // registry learned a job_total distribution from it.
    let spans = engine.job_spans(id).expect("span tree retained");
    for name in ["\"name\":\"job\"", "\"name\":\"queue_wait\"", "\"name\":\"result_encode\""] {
        assert!(spans.contains(name), "span tree missing {name}: {spans}");
    }
    let q = engine.quantiles_json();
    assert!(q.contains("\"service.latency.job_total\""), "quantiles: {q}");
    assert!(q.contains("\"p99\":"), "quantiles carry p99: {q}");

    assert!(engine.drain(WAIT));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_protocol_round_trips_through_the_engine() {
    use exynos_service::json::Json;
    use exynos_service::protocol::handle_line;
    let engine = Engine::start(Box::new(BenchRunner::new(1)), fast_cfg()).unwrap();

    let pong = handle_line(&engine, r#"{"cmd":"ping"}"#);
    assert_eq!(pong, r#"{"ok":true,"pong":true}"#);

    let resp = handle_line(
        &engine,
        r#"{"cmd":"submit","job":{"kind":"checkpoint","gen":"m5","warmup":300}}"#,
    );
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    let id = v.get("id").and_then(Json::as_u64).unwrap();

    wait_terminal(&engine, id);
    let resp = handle_line(&engine, &format!(r#"{{"cmd":"result","id":{id}}}"#));
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("state").and_then(Json::as_str), Some("completed"), "{resp}");
    assert!(v.get("payload").and_then(Json::as_str).unwrap().contains("\"fnv\""));

    let resp = handle_line(&engine, r#"{"cmd":"submit","job":{"kind":"nope"}}"#);
    assert!(resp.contains("\"error\":\"bad_request\""), "{resp}");

    let resp = handle_line(&engine, r#"{"cmd":"shutdown"}"#);
    assert!(resp.contains("\"draining\":true"), "{resp}");
    match engine.submit(quick_sweep(), None, None) {
        Err(SubmitError::ShuttingDown) => {}
        other => panic!("post-shutdown submissions must be refused: {other:?}"),
    }
    assert!(engine.drain(WAIT));
}
