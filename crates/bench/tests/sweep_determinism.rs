//! The parallel sweep executor must be a pure scheduling change: for any
//! thread count, `run_population_with_threads` must return exactly the
//! records the serial sweep returns — same catalog order, and every float
//! identical to the bit.

use exynos_bench::experiments::run_population_with_threads;

/// Small windows keep the debug-build run fast; determinism does not
/// depend on the window sizes.
const WARMUP: u64 = 500;
const DETAIL: u64 = 2_000;

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_population_with_threads(1, WARMUP, DETAIL, 1);
    assert!(!serial.is_empty(), "reference sweep produced no records");
    for threads in [2usize, 8] {
        let parallel = run_population_with_threads(1, WARMUP, DETAIL, threads);
        assert_eq!(
            serial.len(),
            parallel.len(),
            "{threads} threads returned a different record count"
        );
        for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
            assert_eq!(s.name, p.name, "record {i} out of order at {threads} threads");
            assert_eq!(s.gen, p.gen, "record {i} generation mismatch at {threads} threads");
            assert_eq!(
                s.ipc.to_bits(),
                p.ipc.to_bits(),
                "record {i} ({} on {}) ipc differs at {threads} threads: {} vs {}",
                s.name,
                s.gen,
                s.ipc,
                p.ipc
            );
            assert_eq!(
                s.mpki.to_bits(),
                p.mpki.to_bits(),
                "record {i} ({} on {}) mpki differs at {threads} threads",
                s.name,
                s.gen
            );
            assert_eq!(
                s.load_latency.to_bits(),
                p.load_latency.to_bits(),
                "record {i} ({} on {}) load latency differs at {threads} threads",
                s.name,
                s.gen
            );
        }
    }
}
