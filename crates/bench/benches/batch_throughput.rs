//! Criterion bench of the batched lockstep engine: population-steps per
//! second at batch widths 1, 4 and 16 versus the scalar per-member loop
//! over the same total work. The batched path decodes each trace chunk
//! once per group; the scalar path regenerates it once per member — the
//! gap between the two curves is exactly the amortized generation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exynos_bench::batch::PopulationBatch;
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_trace::{standard_suite, SlicePlan};

const PLAN: SlicePlan = SlicePlan { warmup: 2_000, detail: 2_000 };

fn members(width: usize) -> Vec<exynos_core::sim::Simulator> {
    let gens = CoreConfig::all_generations();
    (0..width)
        .map(|g| {
            SimBuilder::config(gens[g % gens.len()].clone())
                .build()
                .expect("bench member builds")
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    let suite = standard_suite(1);
    let slice = &suite[0];
    for width in [1usize, 4, 16] {
        // Total simulator steps performed per iteration, either way.
        group.throughput(Throughput::Elements(PLAN.total() * width as u64));
        group.bench_with_input(BenchmarkId::new("scalar", width), &width, |b, &width| {
            b.iter(|| {
                let mut last = 0u64;
                for mut sim in members(width) {
                    let mut gen = slice.build().unwrap();
                    let r = sim.run_slice(&mut *gen, PLAN).expect("clean bench slice");
                    last = r.instructions;
                }
                last
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", width), &width, |b, &width| {
            b.iter(|| {
                let mut batch = PopulationBatch::new();
                for sim in members(width) {
                    batch.push(sim);
                }
                let mut gen = slice.build().unwrap();
                let r = batch.run_slice_lockstep(&mut *gen, PLAN).expect("clean bench slice");
                r.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
