//! Criterion benches for the memory side: cache arrays, the multi-stride
//! engine, DRAM bank timing.

use criterion::{criterion_group, criterion_main, Criterion};
use exynos_dram::{DramConfig, MemoryController};
use exynos_mem::{AccessKind, Cache, CacheConfig, InsertPriority, LineMeta};
use exynos_prefetch::{MultiStrideEngine, StrideConfig};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    for (name, sectors) in [("unsectored", 1), ("sectored", 2)] {
        group.bench_function(name, |b| {
            let mut cache = Cache::new(CacheConfig {
                size_bytes: 1 << 20,
                ways: 8,
                line_bytes: 64,
                sectors_per_tag: sectors,
                latency: 12,
            });
            let mut addr = 0u64;
            b.iter(|| {
                addr = addr.wrapping_add(64) & 0xFF_FFFF;
                if !cache.access(addr, AccessKind::Demand) {
                    cache.fill(addr, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
                }
            })
        });
    }
    group.finish();
}

fn bench_stride_engine(c: &mut Criterion) {
    c.bench_function("stride_engine_train", |b| {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let mut line = 0u64;
        let mut phase = 0usize;
        let pat = [2u64, 2, 5];
        b.iter(|| {
            line += pat[phase];
            phase = (phase + 1) % 3;
            std::hint::black_box(e.on_demand_line(line).len())
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_read", |b| {
        let mut mc = MemoryController::new(DramConfig::m5());
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(8192);
            t += 100;
            std::hint::black_box(mc.read(addr, t))
        })
    });
}

criterion_group!(benches, bench_cache, bench_stride_engine, bench_dram);
criterion_main!(benches);
