//! Criterion bench of the raw `Simulator::step` hot path: instructions
//! stepped per second on M3 and M6, with no slice-plan bookkeeping around
//! it — the number the step-loop optimizations move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::sim::Simulator;
use exynos_trace::standard_suite;

const STEPS: u64 = 20_000;

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(STEPS));
    let suite = standard_suite(1);
    let slice = suite
        .iter()
        .find(|s| s.name.starts_with("specint/"))
        .expect("standard suite has a specint slice");
    for cfg in [CoreConfig::m3(), CoreConfig::m6()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.gen.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
                    let mut gen = slice.build().unwrap();
                    let mut last = 0;
                    for _ in 0..STEPS {
                        let inst = gen.next_inst();
                        last = sim.step(&inst).expect("clean bench step");
                    }
                    last
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
