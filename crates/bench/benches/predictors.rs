//! Criterion benches for the branch-prediction stack: SHP prediction,
//! front-end throughput per generation, indirect prediction schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exynos_branch::config::FrontendConfig;
use exynos_branch::frontend::FrontEnd;
use exynos_branch::history::{GlobalHistory, PathHistory};
use exynos_branch::shp::{Shp, ShpConfig};
use exynos_trace::gen::web::{WebParams, WebWorkload};
use exynos_trace::{Inst, TraceGen};

fn bench_shp(c: &mut Criterion) {
    let mut group = c.benchmark_group("shp_predict");
    for (name, cfg) in [("m1_8x1k", ShpConfig::m1()), ("m5_16x2k", ShpConfig::m5())] {
        let shp = Shp::new(cfg);
        let mut g = GlobalHistory::new();
        let p = PathHistory::new();
        for i in 0..200 {
            g.push(i % 3 == 0);
        }
        group.bench_function(name, |b| {
            let mut pc = 0x4000u64;
            b.iter(|| {
                pc = pc.wrapping_add(4);
                std::hint::black_box(shp.predict(pc, 3, &g, &p).sum)
            })
        });
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend_per_inst");
    group.sample_size(20);
    for cfg in [FrontendConfig::m1(), FrontendConfig::m5(), FrontendConfig::m6()] {
        // Pre-generate a trace chunk.
        let mut gen = WebWorkload::new(&WebParams::default(), 70, 3);
        let insts: Vec<Inst> = (0..50_000).map(|_| gen.next_inst()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(cfg.name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut fe = FrontEnd::new(cfg.clone());
                for i in &insts {
                    std::hint::black_box(fe.on_inst(i).expect("clean trace"));
                }
                fe.stats().mpki()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shp, bench_frontend);
criterion_main!(benches);
