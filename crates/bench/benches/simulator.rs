//! Criterion benches of the whole simulator: instructions simulated per
//! second per generation (the tool a user sizes their experiments with).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exynos_core::builder::SimBuilder;
use exynos_core::config::CoreConfig;
use exynos_core::sim::Simulator;
use exynos_trace::{standard_suite, SlicePlan};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_slice");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    let suite = standard_suite(1);
    let slice = suite.iter().find(|s| s.name.starts_with("mobile/")).unwrap();
    for cfg in [CoreConfig::m1(), CoreConfig::m3(), CoreConfig::m6()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.gen.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
                    let mut gen = slice.build().unwrap();
                    sim.run_slice(&mut *gen, SlicePlan::new(1_000, 10_000))
                        .expect("clean bench slice")
                        .ipc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
