//! End-to-end integration tests spanning every crate through the facade.

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::Simulator;
use exynos::secure::context::ContextId;
use exynos::trace::gen::web::{WebParams, WebWorkload};
use exynos::trace::{standard_suite, SlicePlan, SuiteKind};

#[test]
fn whole_suite_smoke_on_m1_and_m6() {
    // Every catalog slice must simulate without panicking and produce
    // sane metrics on the first and last generations.
    for cfg in [CoreConfig::m1(), CoreConfig::m6()] {
        for slice in standard_suite(1) {
            let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
            let mut gen = slice.build().unwrap();
            let r = sim.run_slice(&mut *gen, SlicePlan::new(1_000, 6_000)).unwrap();
            assert!(r.ipc > 0.0 && r.ipc <= cfg.width as f64 + 1e-9,
                "{} on {}: ipc {}", slice.name, cfg.gen, r.ipc);
            assert!(r.mpki >= 0.0 && r.mpki < 300.0, "{}: mpki {}", slice.name, r.mpki);
            assert!(r.avg_load_latency < 2_000.0,
                "{} on {}: lat {}", slice.name, cfg.gen, r.avg_load_latency);
        }
    }
}

#[test]
fn all_suite_kinds_have_distinct_behaviour_profiles() {
    // Loop kernels must be clearly higher-IPC than pointer chases on the
    // same generation — the left/right split of Fig. 17.
    let suite = standard_suite(1);
    let run = |kind: SuiteKind| -> f64 {
        let slice = suite.iter().find(|s| s.suite == kind).unwrap();
        let mut sim = SimBuilder::config(CoreConfig::m3()).build().unwrap();
        let mut gen = slice.build().unwrap();
        sim.run_slice(&mut *gen, SlicePlan::new(2_000, 12_000)).unwrap().ipc
    };
    let fp = run(SuiteKind::SpecFpLike);
    let game = run(SuiteKind::GameLike);
    assert!(fp > 2.0, "loop kernels are high-IPC: {fp}");
    assert!(game < fp, "irregular workloads sit below kernels: {game} vs {fp}");
}

#[test]
fn context_switch_scrambles_predictor_state_end_to_end() {
    // Train a web workload under one context, switch contexts (new
    // CONTEXT_HASH), and confirm return/indirect mispredicts spike — the
    // §V property observed through the full simulator.
    let mk = || WebWorkload::new(&WebParams::default(), 60, 3);
    let mut sim = SimBuilder::config(CoreConfig::m4()).build().unwrap(); // M4 productized CSV2
    let mut gen = mk();
    sim.run_slice(&mut gen, SlicePlan::new(0, 60_000)).unwrap();
    let before = sim.frontend().stats().return_mispredicts
        + sim.frontend().stats().indirect_mispredicts;
    // Context switch: same code, new ASID.
    sim.frontend_mut().set_context(ContextId::user(99, 0));
    sim.run_slice(&mut gen, SlicePlan::new(0, 20_000)).unwrap();
    let after = sim.frontend().stats().return_mispredicts
        + sim.frontend().stats().indirect_mispredicts;
    assert!(
        after > before,
        "stale encrypted targets must mispredict after a context switch"
    );
}

#[test]
fn mpki_and_ipc_improve_together_on_branchy_code() {
    // Fig. 9 (MPKI down) and Fig. 17 (IPC up) on the same workload.
    let suite = standard_suite(1);
    // mk2: 128 branch sites, 16-deep patterns, 5% noise — learnable but
    // not trivial, so generational predictor growth shows.
    let slice = suite
        .iter()
        .find(|s| s.name.starts_with("specint/mk2"))
        .unwrap();
    let run = |cfg: CoreConfig| {
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        let mut gen = slice.build().unwrap();
        let r = sim.run_slice(&mut *gen, SlicePlan::new(4_000, 25_000)).unwrap();
        (r.mpki, r.ipc)
    };
    let (mpki1, ipc1) = run(CoreConfig::m1());
    let (mpki6, ipc6) = run(CoreConfig::m6());
    assert!(mpki6 < mpki1, "MPKI: {mpki1:.2} -> {mpki6:.2}");
    assert!(ipc6 > ipc1, "IPC: {ipc1:.2} -> {ipc6:.2}");
}

#[test]
fn facade_reexports_are_usable() {
    // The top-level re-exports compile and agree with the module paths.
    let cfg: exynos::CoreConfig = exynos::CoreConfig::m2();
    assert_eq!(cfg.gen, exynos::Generation::M2);
    let plan: exynos::SlicePlan = exynos::SlicePlan::default();
    assert_eq!(plan.detail, 200_000);
    assert!(exynos::standard_suite(1).len() >= 20);
}
