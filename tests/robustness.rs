//! Robustness / failure-injection tests: phase discontinuities, context
//! switches, and predictor-hostile inputs through the full stack.

use exynos::core::config::CoreConfig;
use exynos::core::sim::Simulator;
use exynos::secure::context::ContextId;
use exynos::trace::gen::markov::{MarkovBranches, MarkovMode, MarkovParams};
use exynos::trace::gen::mixed::PhaseMix;
use exynos::trace::gen::pointer_chase::{PointerChase, PointerChaseParams};
use exynos::trace::gen::streaming::{MultiStride, MultiStrideParams};
use exynos::trace::{BoxedGen, SlicePlan, TraceGen};

#[test]
fn phase_mix_gaps_are_survived_and_counted() {
    // A phase mix switches code regions every 500 instructions — each
    // switch is a PC discontinuity the front end must treat as a redirect.
    let children: Vec<BoxedGen> = vec![
        Box::new(MultiStride::new(&MultiStrideParams::default(), 200, 1)),
        Box::new(PointerChase::new(&PointerChaseParams::default(), 201, 2)),
        Box::new(MarkovBranches::new(&MarkovParams::default(), 202, 3)),
    ];
    let mut mix = PhaseMix::new(children, 500);
    let mut sim = Simulator::new(CoreConfig::m5());
    let r = sim.run_slice(&mut mix, SlicePlan::new(2_000, 30_000));
    let gaps = sim.frontend().stats().trace_gaps;
    assert!(gaps >= 30, "phase switches must register as trace gaps: {gaps}");
    assert!(r.ipc > 0.0 && r.ipc <= 6.0);
}

#[test]
fn rapid_context_switches_never_wedge_the_pipeline() {
    // Re-keying every few thousand instructions (CEASER-style rotation,
    // §V) must degrade gracefully, not break the simulator.
    let mut sim = Simulator::new(CoreConfig::m5());
    let mut gen = MarkovBranches::new(&MarkovParams::default(), 203, 5);
    let mut last = 0;
    for round in 0..20u16 {
        sim.frontend_mut().set_context(ContextId::user(round, 0));
        for _ in 0..3_000 {
            let inst = gen.next_inst();
            let rt = sim.step(&inst);
            assert!(rt >= last);
            last = rt;
        }
    }
    let s = sim.stats();
    assert_eq!(s.instructions, 60_000);
    let ipc = s.instructions as f64 / s.last_retire as f64;
    assert!(ipc > 0.05, "pipeline must keep moving across re-keys: {ipc}");
}

#[test]
fn flushing_switches_cost_more_than_rekeying() {
    // End-to-end §V tradeoff: flushing every predictor at each switch
    // yields strictly more mispredicts than CONTEXT_HASH re-keying.
    let run = |flush: bool| -> u64 {
        let mut sim = Simulator::new(CoreConfig::m4());
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 204, 7);
        for round in 0..8u16 {
            if flush {
                sim.frontend_mut().set_context_flushing(ContextId::user(round, 0));
            } else {
                sim.frontend_mut().set_context(ContextId::user(round, 0));
            }
            for _ in 0..5_000 {
                let inst = gen.next_inst();
                let _ = sim.step(&inst);
            }
        }
        sim.frontend().stats().total_mispredicts()
    };
    let flushed = run(true);
    let rekeyed = run(false);
    assert!(
        flushed > rekeyed,
        "flushing must cost retraining: {flushed} vs {rekeyed}"
    );
}

#[test]
fn parity_branches_stay_hard_on_every_generation() {
    // The adversarial (linearly-inseparable) tail of Fig. 9 must not be
    // magically learned by any generation — it pins the right edge of the
    // MPKI curves.
    for cfg in [CoreConfig::m1(), CoreConfig::m6()] {
        let name = cfg.gen;
        let mut sim = Simulator::new(cfg);
        let mut gen = MarkovBranches::new(
            &MarkovParams {
                sites: 32,
                history_depth: 32,
                taps: 5,
                mode: MarkovMode::Parity,
                noise: 0.0,
                ..Default::default()
            },
            205,
            9,
        );
        let r = sim.run_slice(&mut gen, SlicePlan::new(5_000, 25_000));
        assert!(
            r.mpki > 30.0,
            "{name}: parity branches must stay hard, got {:.1}",
            r.mpki
        );
    }
}

#[test]
fn degenerate_workloads_do_not_break_the_model() {
    // Single-line spin (every instruction the same branch).
    use exynos::trace::{BranchInfo, BranchKind, Inst, Reg};
    let mut sim = Simulator::new(CoreConfig::m6());
    let spin = Inst::branch(
        0x4000_0000,
        BranchInfo {
            kind: BranchKind::CondDirect,
            taken: true,
            target: 0x4000_0000,
        },
        [Some(Reg::int(1)), None],
    );
    let mut last = 0;
    for _ in 0..10_000 {
        let rt = sim.step(&spin);
        assert!(rt >= last);
        last = rt;
    }
    // One branch per cycle max through a single BR port; IPC <= 2 with
    // M6's 2 BR units but bounded by in-order retire of a 1-inst loop.
    let ipc = sim.stats().instructions as f64 / sim.stats().last_retire as f64;
    assert!(ipc <= 2.0 + 1e-9, "spin IPC {ipc}");
}
