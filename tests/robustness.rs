//! Robustness / failure-injection tests: phase discontinuities, context
//! switches, predictor-hostile inputs, seeded micro-architectural fault
//! injection, and the forward-progress watchdog through the full stack.

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::fault::FaultPlan;
use exynos::core::SimError;
use exynos::secure::context::ContextId;
use exynos::trace::gen::markov::{MarkovBranches, MarkovMode, MarkovParams};
use exynos::trace::gen::mixed::PhaseMix;
use exynos::trace::gen::pointer_chase::{PointerChase, PointerChaseParams};
use exynos::trace::gen::streaming::{MultiStride, MultiStrideParams};
use exynos::trace::{BoxedGen, SlicePlan, TraceGen};

#[test]
fn phase_mix_gaps_are_survived_and_counted() {
    // A phase mix switches code regions every 500 instructions — each
    // switch is a PC discontinuity the front end must treat as a redirect.
    let children: Vec<BoxedGen> = vec![
        Box::new(MultiStride::new(&MultiStrideParams::default(), 200, 1)),
        Box::new(PointerChase::new(&PointerChaseParams::default(), 201, 2)),
        Box::new(MarkovBranches::new(&MarkovParams::default(), 202, 3)),
    ];
    let mut mix = PhaseMix::new(children, 500);
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    let r = sim.run_slice(&mut mix, SlicePlan::new(2_000, 30_000)).unwrap();
    let gaps = sim.frontend().stats().trace_gaps;
    assert!(gaps >= 30, "phase switches must register as trace gaps: {gaps}");
    assert!(r.ipc > 0.0 && r.ipc <= 6.0);
}

#[test]
fn rapid_context_switches_never_wedge_the_pipeline() {
    // Re-keying every few thousand instructions (CEASER-style rotation,
    // §V) must degrade gracefully, not break the simulator.
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    let mut gen = MarkovBranches::new(&MarkovParams::default(), 203, 5);
    let mut last = 0;
    for round in 0..20u16 {
        sim.frontend_mut().set_context(ContextId::user(round, 0));
        for _ in 0..3_000 {
            let inst = gen.next_inst();
            let rt = sim.step(&inst).unwrap();
            assert!(rt >= last);
            last = rt;
        }
    }
    let s = sim.stats();
    assert_eq!(s.instructions, 60_000);
    let ipc = s.instructions as f64 / s.last_retire as f64;
    assert!(ipc > 0.05, "pipeline must keep moving across re-keys: {ipc}");
}

#[test]
fn flushing_switches_cost_more_than_rekeying() {
    // End-to-end §V tradeoff: flushing every predictor at each switch
    // yields strictly more mispredicts than CONTEXT_HASH re-keying.
    let run = |flush: bool| -> u64 {
        let mut sim = SimBuilder::config(CoreConfig::m4()).build().unwrap();
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 204, 7);
        for round in 0..8u16 {
            if flush {
                sim.frontend_mut().set_context_flushing(ContextId::user(round, 0));
            } else {
                sim.frontend_mut().set_context(ContextId::user(round, 0));
            }
            for _ in 0..5_000 {
                let inst = gen.next_inst();
                sim.step(&inst).unwrap();
            }
        }
        sim.frontend().stats().total_mispredicts()
    };
    let flushed = run(true);
    let rekeyed = run(false);
    assert!(
        flushed > rekeyed,
        "flushing must cost retraining: {flushed} vs {rekeyed}"
    );
}

#[test]
fn parity_branches_stay_hard_on_every_generation() {
    // The adversarial (linearly-inseparable) tail of Fig. 9 must not be
    // magically learned by any generation — it pins the right edge of the
    // MPKI curves.
    for cfg in [CoreConfig::m1(), CoreConfig::m6()] {
        let name = cfg.gen;
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        let mut gen = MarkovBranches::new(
            &MarkovParams {
                sites: 32,
                history_depth: 32,
                taps: 5,
                mode: MarkovMode::Parity,
                noise: 0.0,
                ..Default::default()
            },
            205,
            9,
        );
        let r = sim.run_slice(&mut gen, SlicePlan::new(5_000, 25_000)).unwrap();
        assert!(
            r.mpki > 30.0,
            "{name}: parity branches must stay hard, got {:.1}",
            r.mpki
        );
    }
}

#[test]
fn degenerate_workloads_do_not_break_the_model() {
    // Single-line spin (every instruction the same branch).
    use exynos::trace::{BranchInfo, BranchKind, Inst, Reg};
    let mut sim = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let spin = Inst::branch(
        0x4000_0000,
        BranchInfo {
            kind: BranchKind::CondDirect,
            taken: true,
            target: 0x4000_0000,
        },
        [Some(Reg::int(1)), None],
    );
    let mut last = 0;
    for _ in 0..10_000 {
        let rt = sim.step(&spin).unwrap();
        assert!(rt >= last);
        last = rt;
    }
    // One branch per cycle max through a single BR port; IPC <= 2 with
    // M6's 2 BR units but bounded by in-order retire of a 1-inst loop.
    let ipc = sim.stats().instructions as f64 / sim.stats().last_retire as f64;
    assert!(ipc <= 2.0 + 1e-9, "spin IPC {ipc}");
}

#[test]
fn seeded_chaos_injection_survives_every_generation() {
    // Every fault class firing on prime periods, across all six cores:
    // the run must finish (Ok or typed SimError — never a panic/abort),
    // and an Ok run must report sane IPC despite the corruption.
    for (i, cfg) in CoreConfig::all_generations().into_iter().enumerate() {
        let name = cfg.gen;
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        sim.attach_fault_injector(FaultPlan::chaos(0xC0FFEE + i as u64));
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 210, 11 + i as u64);
        match sim.run_slice(&mut gen, SlicePlan::new(2_000, 40_000)) {
            Ok(r) => {
                assert!(r.ipc > 0.0 && r.ipc <= 6.0, "{name}: chaos IPC {}", r.ipc);
            }
            Err(e) => {
                // A typed error is an acceptable outcome under sustained
                // corruption; an untyped panic is not (it would have
                // aborted this test before reaching here).
                eprintln!("{name}: chaos run ended with typed error: {e}");
            }
        }
        let fs = sim.fault_stats().expect("injector attached");
        assert!(fs.total() > 0, "{name}: injector must actually fire");
        assert!(fs.malformed > 0 && fs.gaps > 0 && fs.btb_targets > 0);
    }
}

#[test]
fn chaos_injection_is_deterministic() {
    // Same seed → bit-identical outcome, including the injected faults.
    let run = || {
        let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
        sim.attach_fault_injector(FaultPlan::chaos(42));
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 211, 13);
        let r = sim.run_slice(&mut gen, SlicePlan::new(1_000, 20_000));
        let s = sim.stats();
        (
            r.map(|r| (r.cycles, r.mpki.to_bits())).map_err(|e| e.to_string()),
            s.malformed_insts,
            s.predictor_corruptions,
            sim.fault_stats().map(|f| f.total()),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn malformed_records_are_counted_and_skipped() {
    let mut plan = FaultPlan::none();
    plan.malform_inst_every = 100;
    let mut sim = SimBuilder::config(CoreConfig::m3()).build().unwrap();
    sim.attach_fault_injector(plan);
    let mut gen = MultiStride::new(&MultiStrideParams::default(), 212, 17);
    let r = sim
        .run_slice(&mut gen, SlicePlan::new(0, 10_000))
        .expect("lenient decode skips malformed records");
    assert_eq!(sim.stats().malformed_insts, 100, "one skip per firing");
    assert!(r.ipc > 0.0);
}

#[test]
fn strict_decode_surfaces_malformed_records_as_typed_errors() {
    let mut plan = FaultPlan::none();
    plan.malform_inst_every = 500;
    let mut sim = SimBuilder::config(CoreConfig::m3()).build().unwrap();
    sim.attach_fault_injector(plan);
    sim.set_strict_decode(true);
    let mut gen = MultiStride::new(&MultiStrideParams::default(), 212, 17);
    match sim.run_slice(&mut gen, SlicePlan::new(0, 10_000)) {
        Err(SimError::MalformedInst { kind, .. }) => {
            assert!(matches!(
                kind,
                exynos::trace::InstKind::Load | exynos::trace::InstKind::Store
            ));
        }
        other => panic!("strict decode must error on the first malformed record: {other:?}"),
    }
}

#[test]
fn watchdog_detects_wedged_retirement_with_occupancy_snapshot() {
    // Wedge the retire stage: every 50th instruction completes 80k cycles
    // late (beyond the 50k default threshold). The degradation ladder
    // runs its three rungs, then the fourth stall surfaces the typed
    // error carrying an occupancy snapshot.
    let mut plan = FaultPlan::none();
    plan.stall_every = 50;
    plan.stall_cycles = 80_000;
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    sim.attach_fault_injector(plan);
    let mut gen = MarkovBranches::new(&MarkovParams::default(), 213, 19);
    let err = sim
        .run_slice(&mut gen, SlicePlan::new(0, 10_000))
        .expect_err("a persistently wedged ROB must trip the watchdog");
    match err {
        SimError::ForwardProgressStall { stalled_cycles, recoveries, snapshot, .. } => {
            assert!(stalled_cycles > 50_000, "gap {stalled_cycles}");
            assert_eq!(recoveries, 3, "full ladder spent before erroring");
            assert_eq!(snapshot.rob_capacity, 228, "M5 ROB capacity in snapshot");
            assert!(snapshot.last_retire > 0, "snapshot captures retire progress");
            assert!(snapshot.mshr_capacity > 0);
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(sim.stats().watchdog_events, 4, "3 recovered + 1 fatal");
    assert_eq!(sim.stats().watchdog_recoveries, 3);
}

#[test]
fn watchdog_recoveries_decay_with_sustained_progress() {
    // Stalls spaced far apart (> the 1024-step decay streak) must each be
    // recovered: the ladder never exhausts, the run completes Ok.
    let mut plan = FaultPlan::none();
    plan.stall_every = 2_000;
    plan.stall_cycles = 80_000;
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    sim.attach_fault_injector(plan);
    let mut gen = MarkovBranches::new(&MarkovParams::default(), 214, 23);
    sim.run_slice(&mut gen, SlicePlan::new(0, 20_000))
        .expect("isolated stalls must never abort the run");
    assert_eq!(sim.stats().watchdog_events, 10, "one event per firing");
    assert_eq!(sim.stats().watchdog_recoveries, 10, "every event recovered");
}

#[test]
fn watchdog_ladder_fires_in_order_on_every_generation() {
    // Soak the full degradation ladder across m1–m6: under a sustained
    // retirement wedge the rungs must fire in escalation order (flush
    // predictors → also demote the UOC to FilterMode → also re-key the
    // context cipher), the fourth event must surface the typed error,
    // and with the wedge removed the same simulator must resume forward
    // progress. No panics anywhere.
    use exynos::telemetry::{PipelineEvent, Telemetry, TelemetryConfig};

    for (i, cfg) in CoreConfig::all_generations().into_iter().enumerate() {
        let name = cfg.gen;
        let has_uoc = cfg.uoc.is_some();
        let mut plan = FaultPlan::none();
        plan.stall_every = 50;
        plan.stall_cycles = 80_000;
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        sim.attach_fault_injector(plan);
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 216, 31 + i as u64);
        let mut tel = Telemetry::new(TelemetryConfig { epoch_len: 5_000, event_capacity: 1 << 14 });
        let err = sim
            .run_slice_with(&mut gen, SlicePlan::new(0, 10_000), &mut tel)
            .expect_err("a persistent wedge must exhaust the ladder");
        match err {
            SimError::ForwardProgressStall { recoveries, .. } => {
                assert_eq!(recoveries, 3, "{name}: full ladder spent before erroring");
            }
            other => panic!("{name}: wrong error: {other}"),
        }
        assert_eq!(sim.stats().watchdog_events, 4, "{name}: 3 recovered + 1 fatal");
        assert_eq!(sim.stats().watchdog_recoveries, 3, "{name}");
        if Telemetry::ACTIVE {
            // The trip events record which rung each recovery applied;
            // they must appear exactly once each, in escalation order.
            let mut rungs = Vec::new();
            tel.events().for_each(&mut |r| {
                if let PipelineEvent::WatchdogTrip { rung, .. } = r.event {
                    rungs.push(rung);
                }
            });
            assert_eq!(rungs, vec![0, 1, 2], "{name}: ladder order");
        }
        if has_uoc {
            // Rung 1 demoted the UOC: its state loss is visible as zero
            // further supply only after demotion, which the soak can't
            // observe mid-run — but the demotion must not have broken
            // the machine; checked by the resume below.
            assert!(name == exynos::Generation::M5 || name == exynos::Generation::M6);
        }

        // Remove the wedge, grant fresh recovery budget (the operator
        // move the service tier automates), and keep going on the SAME
        // simulator. Completions stalled before the error are still in
        // flight, so the ladder may fire a few residual times — but it
        // must recover them all and the run must retire every
        // instruction without erroring.
        sim.attach_fault_injector(FaultPlan::none());
        sim.set_watchdog(50_000, 10);
        let before = sim.stats().instructions;
        let r = sim
            .run_slice(&mut gen, SlicePlan::new(0, 5_000))
            .unwrap_or_else(|e| panic!("{name}: progress must resume after the wedge clears: {e}"));
        assert!(r.ipc > 0.0, "{name}: resumed IPC {}", r.ipc);
        assert_eq!(sim.stats().instructions, before + 5_000, "{name}: forward progress");
        let residual = sim.stats().watchdog_events - 4;
        assert!(residual <= 4, "{name}: only inflight wedges may still trip: {residual}");
    }
}

#[test]
fn watchdog_threshold_is_configurable() {
    // A tiny threshold and zero recovery budget: the first legitimate
    // long-latency event already errors out — proving the knob works.
    let mut sim = SimBuilder::config(CoreConfig::m1()).build().unwrap();
    sim.set_watchdog(10, 0);
    let mut gen = PointerChase::new(&PointerChaseParams::default(), 215, 29);
    let err = sim.run_slice(&mut gen, SlicePlan::new(0, 50_000));
    assert!(
        matches!(err, Err(SimError::ForwardProgressStall { .. })),
        "a 10-cycle threshold must trip on any DRAM miss: {err:?}"
    );
}
