//! Integration tests for the telemetry layer (ISSUE PR 3):
//!
//! * telemetry must be a pure observer — attaching it changes no
//!   simulated number, bit for bit;
//! * same-seed runs must emit byte-identical JSONL traces;
//! * the event trace must be cycle-monotone;
//! * the registry must cover the whole machine (many metrics, many
//!   crates);
//! * the bounded ring must count what it drops.
//!
//! Everything here requires the default `telemetry` feature; the
//! `cargo test -p exynos-telemetry --no-default-features` run covers the
//! disabled mode's ZST guarantees.

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::{SimStats, Simulator};
use exynos::telemetry::{Telemetry, TelemetryConfig};
use exynos::trace::gen::loops::{LoopNest, LoopNestParams};
use exynos::trace::SlicePlan;

fn small_tel() -> Telemetry {
    Telemetry::new(TelemetryConfig { epoch_len: 1_000, event_capacity: 1 << 14 })
}

fn run_instrumented(cfg: CoreConfig, seed: u64) -> (Simulator, Telemetry) {
    let mut sim = SimBuilder::config(cfg).build().unwrap();
    let mut tel = small_tel();
    let mut gen = LoopNest::new(&LoopNestParams::default(), 7, seed);
    sim.run_slice_with(&mut gen, SlicePlan::new(2_000, 10_000), &mut tel)
        .expect("clean trace");
    sim.sample_telemetry(&mut tel);
    tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
    (sim, tel)
}

fn assert_stats_bits_equal(a: &SimStats, b: &SimStats) {
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.last_retire, b.last_retire);
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.uoc_supplied, b.uoc_supplied);
    assert_eq!(a.malformed_insts, b.malformed_insts);
    assert_eq!(a.predictor_corruptions, b.predictor_corruptions);
    assert_eq!(a.uoc_recoveries, b.uoc_recoveries);
    assert_eq!(a.watchdog_events, b.watchdog_events);
    assert_eq!(a.watchdog_recoveries, b.watchdog_recoveries);
}

#[test]
fn telemetry_does_not_change_results() {
    let mut plain = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let mut gen = LoopNest::new(&LoopNestParams::default(), 7, 42);
    let r_plain = plain
        .run_slice(&mut gen, SlicePlan::new(2_000, 10_000))
        .expect("clean trace");

    let (instrumented, _tel) = run_instrumented(CoreConfig::m6(), 42);

    assert_stats_bits_equal(&plain.stats(), &instrumented.stats());
    // Every derived f64 must match bit for bit, not approximately.
    let mut i_gen = LoopNest::new(&LoopNestParams::default(), 7, 42);
    let mut i_sim = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let mut tel = small_tel();
    let r_instr = i_sim
        .run_slice_with(&mut i_gen, SlicePlan::new(2_000, 10_000), &mut tel)
        .expect("clean trace");
    assert_eq!(r_plain.ipc.to_bits(), r_instr.ipc.to_bits());
    assert_eq!(r_plain.mpki.to_bits(), r_instr.mpki.to_bits());
    assert_eq!(
        r_plain.avg_load_latency.to_bits(),
        r_instr.avg_load_latency.to_bits()
    );
    assert_eq!(r_plain.instructions, r_instr.instructions);
    assert_eq!(r_plain.cycles, r_instr.cycles);
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let (_s1, t1) = run_instrumented(CoreConfig::m6(), 1234);
    let (_s2, t2) = run_instrumented(CoreConfig::m6(), 1234);
    assert_eq!(t1.events_jsonl(), t2.events_jsonl());
    assert_eq!(t1.metrics_jsonl(), t2.metrics_jsonl());
    assert_eq!(t1.metrics_csv(), t2.metrics_csv());
}

#[test]
fn different_seeds_diverge() {
    let (_s1, t1) = run_instrumented(CoreConfig::m6(), 1);
    let (_s2, t2) = run_instrumented(CoreConfig::m6(), 2);
    // Sanity: the byte-identity test above isn't vacuous.
    assert_ne!(t1.events_jsonl(), t2.events_jsonl());
}

#[test]
fn event_cycles_are_monotone() {
    let (_sim, tel) = run_instrumented(CoreConfig::m6(), 99);
    let events = tel.events();
    assert!(!events.is_empty(), "an M6 loop run must produce events");
    let mut prev = 0u64;
    let mut prev_seq = None;
    events.for_each(&mut |r| {
        assert!(r.cycle >= prev, "cycle went backwards: {} < {prev}", r.cycle);
        prev = r.cycle;
        if let Some(ps) = prev_seq {
            assert_eq!(r.seq, ps + 1, "seq numbers must be dense");
        }
        prev_seq = Some(r.seq);
    });
}

#[test]
fn registry_covers_the_machine() {
    let (_sim, tel) = run_instrumented(CoreConfig::m6(), 7);
    let reg = tel.registry();
    assert!(
        reg.len() >= 12,
        "expected >= 12 metrics, got {}",
        reg.len()
    );
    let mut crates: Vec<String> = Vec::new();
    reg.for_each(&mut |component, _name, _kind, _value| {
        let first = component.split('.').next().unwrap_or(component).to_string();
        if !crates.contains(&first) {
            crates.push(first);
        }
    });
    for expected in ["core", "branch", "mem", "prefetch", "dram", "uoc"] {
        assert!(
            crates.iter().any(|c| c == expected),
            "missing metrics from crate '{expected}' (have {crates:?})"
        );
    }
    assert!(crates.len() >= 5, "metrics must span >= 5 crates");
}

#[test]
fn epoch_series_grows_with_run_length() {
    let (_sim, tel) = run_instrumented(CoreConfig::m6(), 3);
    // 12k instructions at epoch_len 1k, plus the forced final flush.
    assert!(tel.series().len() >= 12, "got {} epochs", tel.series().len());
    // Epoch marks must be instruction- and cycle-monotone.
    let mut prev = (0u64, 0u64);
    for i in 0..tel.series().len() {
        let mark = tel.series().mark(i).expect("mark in range");
        assert!(mark.instructions >= prev.0);
        assert!(mark.cycle >= prev.1);
        prev = (mark.instructions, mark.cycle);
    }
}

#[test]
fn bounded_ring_counts_drops() {
    let mut sim = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let mut tel = Telemetry::new(TelemetryConfig { epoch_len: 1_000, event_capacity: 8 });
    let mut gen = LoopNest::new(&LoopNestParams::default(), 7, 5);
    sim.run_slice_with(&mut gen, SlicePlan::new(2_000, 10_000), &mut tel)
        .expect("clean trace");
    let events = tel.events();
    assert_eq!(events.len(), 8, "ring must clamp to capacity");
    assert!(events.recorded() > 8, "the run produces more than 8 events");
    assert_eq!(events.dropped(), events.recorded() - 8);
}

// --- Span tracing, quantiles & flight recorder (ISSUE PR 8) ---------

use exynos::telemetry::{
    FlightRecorder, QuantileHistogram, SharedSpans, SpanRecorder, QUANTILE_SUB_BUCKETS,
};

#[test]
fn quantile_bucket_boundary_error_is_bounded() {
    // Log-bucketed with QUANTILE_SUB_BUCKETS sub-buckets per octave: a
    // reported quantile bound must never undershoot the observed value
    // and must overshoot by at most value / QUANTILE_SUB_BUCKETS.
    for &v in &[
        1u64, 7, 8, 9, 15, 16, 17, 100, 1_000, 4_095, 4_096, 65_537, 1 << 30, (1 << 40) + 12_345,
    ] {
        let mut h = QuantileHistogram::new();
        h.observe(v);
        let q = h.quantile(0.99);
        assert!(q >= v, "bound {q} undershoots observed {v}");
        assert!(
            q - v <= v / QUANTILE_SUB_BUCKETS as u64,
            "bound {q} overshoots {v} by more than 1/{QUANTILE_SUB_BUCKETS}"
        );
    }
}

#[test]
fn quantile_merge_is_associative_and_commutative() {
    let fill = |seed: u64, n: u64| {
        let mut h = QuantileHistogram::new();
        let mut x = seed;
        for _ in 0..n {
            // xorshift64: deterministic, covers many octaves.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.observe(x >> (x % 50));
        }
        h
    };
    let (a, b, c) = (fill(1, 500), fill(2, 300), fill(3, 700));

    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);

    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);

    let mut cba = c.clone();
    cba.merge(&b);
    cba.merge(&a);

    assert_eq!(ab_c, a_bc, "merge must be associative");
    assert_eq!(ab_c, cba, "merge must be commutative");
    assert_eq!(ab_c.count(), 1_500);
}

#[test]
fn quantile_summary_json_is_byte_identical_for_same_seed() {
    let run = || {
        let mut h = QuantileHistogram::new();
        let mut x = 0x9E37_79B9_u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.observe(x % 1_000_000);
        }
        h.summary_json()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same observations must render byte-identical JSON");
    assert!(a.contains("\"p50\":"), "summary carries quantile keys: {a}");
    assert!(a.contains("\"p99\":"), "summary carries quantile keys: {a}");
}

#[test]
fn span_tree_under_manual_clock_is_deterministic() {
    let run = || {
        let mut r = SpanRecorder::manual();
        let root = r.start("job", None);
        r.attr_u64(root, "id", 1);
        r.advance(5);
        let queue = r.start("queue_wait", Some(root));
        r.advance(120);
        r.end(queue);
        let attempt = r.start("attempt[1]", Some(root));
        r.advance(10_000);
        r.attr_str(attempt, "gen", "m6");
        r.end(attempt);
        let enc = r.start("result_encode", Some(root));
        r.advance(30);
        r.end(enc);
        r.end(root);
        r.to_jsonl()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    assert_eq!(a.lines().count(), 4, "four spans, one line each: {a}");
    let first = a.lines().next().unwrap();
    assert!(first.contains("\"type\":\"span\""), "{first}");
    assert!(first.contains("\"parent\":null"), "root has no parent: {first}");
    assert!(a.contains("\"name\":\"queue_wait\""), "{a}");
    assert!(a.contains("\"dur_us\":120"), "queue wait lasted 120us: {a}");
}

#[test]
fn shared_spans_aggregate_closed_durations() {
    let spans = SharedSpans::manual();
    let root = spans.start("job", None);
    let att = spans.start("attempt[1]", Some(root));
    spans.advance(40);
    spans.end(att);
    spans.advance(2);
    spans.end(root);
    let open = spans.start("queue_wait", Some(root));
    let _ = open; // never closed: must not appear below
    let closed = spans.closed_durations();
    assert_eq!(
        closed,
        vec![("job".to_string(), 42), ("attempt[1]".to_string(), 40)],
        "closed spans only, recorder order"
    );
}

#[test]
fn flight_recorder_dump_is_parseable_and_bounded() {
    let mut f = FlightRecorder::new(4);
    for i in 0..9u64 {
        f.note(format!("{{\"type\":\"event\",\"t_us\":{i},\"event\":\"tick\",\"id\":{i}}}"));
    }
    let dump = f.dump("watchdog");
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(lines.len(), 5, "header plus 4 retained lines: {dump}");
    assert!(lines[0].contains("\"type\":\"postmortem\""), "{}", lines[0]);
    assert!(lines[0].contains("\"reason\":\"watchdog\""), "{}", lines[0]);
    assert!(lines[0].contains("\"dropped\":5"), "{}", lines[0]);
    // Oldest retained line is id 5 (0..=4 were evicted).
    assert!(lines[1].contains("\"id\":5"), "{}", lines[1]);
    assert_eq!(f.dumps(), 1);
}
