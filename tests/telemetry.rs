//! Integration tests for the telemetry layer (ISSUE PR 3):
//!
//! * telemetry must be a pure observer — attaching it changes no
//!   simulated number, bit for bit;
//! * same-seed runs must emit byte-identical JSONL traces;
//! * the event trace must be cycle-monotone;
//! * the registry must cover the whole machine (many metrics, many
//!   crates);
//! * the bounded ring must count what it drops.
//!
//! Everything here requires the default `telemetry` feature; the
//! `cargo test -p exynos-telemetry --no-default-features` run covers the
//! disabled mode's ZST guarantees.

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::{SimStats, Simulator};
use exynos::telemetry::{Telemetry, TelemetryConfig};
use exynos::trace::gen::loops::{LoopNest, LoopNestParams};
use exynos::trace::SlicePlan;

fn small_tel() -> Telemetry {
    Telemetry::new(TelemetryConfig { epoch_len: 1_000, event_capacity: 1 << 14 })
}

fn run_instrumented(cfg: CoreConfig, seed: u64) -> (Simulator, Telemetry) {
    let mut sim = SimBuilder::config(cfg).build().unwrap();
    let mut tel = small_tel();
    let mut gen = LoopNest::new(&LoopNestParams::default(), 7, seed);
    sim.run_slice_with(&mut gen, SlicePlan::new(2_000, 10_000), &mut tel)
        .expect("clean trace");
    sim.sample_telemetry(&mut tel);
    tel.end_epoch(sim.stats().instructions, sim.stats().last_retire);
    (sim, tel)
}

fn assert_stats_bits_equal(a: &SimStats, b: &SimStats) {
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.last_retire, b.last_retire);
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.uoc_supplied, b.uoc_supplied);
    assert_eq!(a.malformed_insts, b.malformed_insts);
    assert_eq!(a.predictor_corruptions, b.predictor_corruptions);
    assert_eq!(a.uoc_recoveries, b.uoc_recoveries);
    assert_eq!(a.watchdog_events, b.watchdog_events);
    assert_eq!(a.watchdog_recoveries, b.watchdog_recoveries);
}

#[test]
fn telemetry_does_not_change_results() {
    let mut plain = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let mut gen = LoopNest::new(&LoopNestParams::default(), 7, 42);
    let r_plain = plain
        .run_slice(&mut gen, SlicePlan::new(2_000, 10_000))
        .expect("clean trace");

    let (instrumented, _tel) = run_instrumented(CoreConfig::m6(), 42);

    assert_stats_bits_equal(&plain.stats(), &instrumented.stats());
    // Every derived f64 must match bit for bit, not approximately.
    let mut i_gen = LoopNest::new(&LoopNestParams::default(), 7, 42);
    let mut i_sim = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let mut tel = small_tel();
    let r_instr = i_sim
        .run_slice_with(&mut i_gen, SlicePlan::new(2_000, 10_000), &mut tel)
        .expect("clean trace");
    assert_eq!(r_plain.ipc.to_bits(), r_instr.ipc.to_bits());
    assert_eq!(r_plain.mpki.to_bits(), r_instr.mpki.to_bits());
    assert_eq!(
        r_plain.avg_load_latency.to_bits(),
        r_instr.avg_load_latency.to_bits()
    );
    assert_eq!(r_plain.instructions, r_instr.instructions);
    assert_eq!(r_plain.cycles, r_instr.cycles);
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let (_s1, t1) = run_instrumented(CoreConfig::m6(), 1234);
    let (_s2, t2) = run_instrumented(CoreConfig::m6(), 1234);
    assert_eq!(t1.events_jsonl(), t2.events_jsonl());
    assert_eq!(t1.metrics_jsonl(), t2.metrics_jsonl());
    assert_eq!(t1.metrics_csv(), t2.metrics_csv());
}

#[test]
fn different_seeds_diverge() {
    let (_s1, t1) = run_instrumented(CoreConfig::m6(), 1);
    let (_s2, t2) = run_instrumented(CoreConfig::m6(), 2);
    // Sanity: the byte-identity test above isn't vacuous.
    assert_ne!(t1.events_jsonl(), t2.events_jsonl());
}

#[test]
fn event_cycles_are_monotone() {
    let (_sim, tel) = run_instrumented(CoreConfig::m6(), 99);
    let events = tel.events();
    assert!(!events.is_empty(), "an M6 loop run must produce events");
    let mut prev = 0u64;
    let mut prev_seq = None;
    events.for_each(&mut |r| {
        assert!(r.cycle >= prev, "cycle went backwards: {} < {prev}", r.cycle);
        prev = r.cycle;
        if let Some(ps) = prev_seq {
            assert_eq!(r.seq, ps + 1, "seq numbers must be dense");
        }
        prev_seq = Some(r.seq);
    });
}

#[test]
fn registry_covers_the_machine() {
    let (_sim, tel) = run_instrumented(CoreConfig::m6(), 7);
    let reg = tel.registry();
    assert!(
        reg.len() >= 12,
        "expected >= 12 metrics, got {}",
        reg.len()
    );
    let mut crates: Vec<String> = Vec::new();
    reg.for_each(&mut |component, _name, _kind, _value| {
        let first = component.split('.').next().unwrap_or(component).to_string();
        if !crates.contains(&first) {
            crates.push(first);
        }
    });
    for expected in ["core", "branch", "mem", "prefetch", "dram", "uoc"] {
        assert!(
            crates.iter().any(|c| c == expected),
            "missing metrics from crate '{expected}' (have {crates:?})"
        );
    }
    assert!(crates.len() >= 5, "metrics must span >= 5 crates");
}

#[test]
fn epoch_series_grows_with_run_length() {
    let (_sim, tel) = run_instrumented(CoreConfig::m6(), 3);
    // 12k instructions at epoch_len 1k, plus the forced final flush.
    assert!(tel.series().len() >= 12, "got {} epochs", tel.series().len());
    // Epoch marks must be instruction- and cycle-monotone.
    let mut prev = (0u64, 0u64);
    for i in 0..tel.series().len() {
        let mark = tel.series().mark(i).expect("mark in range");
        assert!(mark.instructions >= prev.0);
        assert!(mark.cycle >= prev.1);
        prev = (mark.instructions, mark.cycle);
    }
}

#[test]
fn bounded_ring_counts_drops() {
    let mut sim = SimBuilder::config(CoreConfig::m6()).build().unwrap();
    let mut tel = Telemetry::new(TelemetryConfig { epoch_len: 1_000, event_capacity: 8 });
    let mut gen = LoopNest::new(&LoopNestParams::default(), 7, 5);
    sim.run_slice_with(&mut gen, SlicePlan::new(2_000, 10_000), &mut tel)
        .expect("clean trace");
    let events = tel.events();
    assert_eq!(events.len(), 8, "ring must clamp to capacity");
    assert!(events.recorded() > 8, "the run produces more than 8 events");
    assert_eq!(events.dropped(), events.recorded() - 8);
}
